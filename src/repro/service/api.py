"""HTTP surface of the simulation service (stdlib ``http.server``).

JSON in, JSON out, five routes::

    POST   /jobs               submit a sweep job
    GET    /jobs/<id>          job status (state, progress, attempts)
    GET    /jobs/<id>/result   result document of a finished job
    DELETE /jobs/<id>          cancel a queued job
    GET    /healthz            queue depth + worker liveness

Error mapping is uniform: bad specs are 400, unknown jobs 404,
operations illegal in the job's current state 409, quota rejections
429 — each with a JSON body ``{"error": ..., "type": ...}`` carrying
the exception's message so clients can show a real reason, not a
status code.  The handler is deliberately a thin adapter: every
decision lives in the scheduler/store/fleet, which the test-suite
exercises directly; the HTTP layer adds only parsing and status codes.
"""

from __future__ import annotations

import json
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from repro.errors import (
    ConfigurationError,
    InvalidJobState,
    JobNotFound,
    QuotaExceededError,
)
from repro.service.jobs import JobSpec

__all__ = ["ServiceHTTPServer", "make_handler"]

_MAX_BODY_BYTES = 4 * 1024 * 1024


class ServiceHTTPServer(ThreadingHTTPServer):
    """Threaded HTTP server carrying a reference to the service."""

    daemon_threads = True
    allow_reuse_address = True
    # The http.server default backlog of 5 resets connections when a
    # burst of clients (e.g. a fleet of pollers) connects at once.
    request_queue_size = 128

    def __init__(self, address, handler, service) -> None:
        self.service = service
        super().__init__(address, handler)


def make_handler(service) -> type[BaseHTTPRequestHandler]:
    """Build the request-handler class bound to ``service``.

    ``service`` is a :class:`repro.service.server.SimulationService`;
    only its ``scheduler``, ``store``, ``fleet`` and
    ``health_payload()`` are touched.
    """

    class Handler(BaseHTTPRequestHandler):
        protocol_version = "HTTP/1.1"
        server_version = "repro-service"

        # -- routing -------------------------------------------------

        def do_GET(self) -> None:
            self._dispatch(self._get)

        def do_POST(self) -> None:
            self._dispatch(self._post)

        def do_DELETE(self) -> None:
            self._dispatch(self._delete)

        def _get(self) -> tuple[int, dict]:
            if self.path == "/healthz":
                return 200, service.health_payload()
            job_id, tail = self._job_path()
            if tail == "":
                return 200, service.store.get(job_id).status_payload()
            if tail == "result":
                return 200, self._result(job_id)
            raise _NotFound(self.path)

        def _post(self) -> tuple[int, dict]:
            if self.path != "/jobs":
                raise _NotFound(self.path)
            payload = self._read_json()
            spec = JobSpec.from_mapping(payload.get("spec"))
            client = payload.get("client")
            if not isinstance(client, str) or not client:
                raise ConfigurationError(
                    "submissions require a non-empty string 'client'"
                )
            priority = payload.get("priority", 0)
            if not isinstance(priority, int):
                raise ConfigurationError(
                    f"priority must be an integer, got {priority!r}"
                )
            job = service.scheduler.admit(
                spec, client=client, priority=priority
            )
            return 201, job.status_payload()

        def _delete(self) -> tuple[int, dict]:
            job_id, tail = self._job_path()
            if tail != "":
                raise _NotFound(self.path)
            return 200, service.store.cancel(job_id).status_payload()

        # -- helpers -------------------------------------------------

        def _result(self, job_id: str) -> dict:
            job = service.store.get(job_id)
            if job.state != "done":
                raise InvalidJobState(
                    job_id, job.state, "fetch the result of"
                )
            return {
                "id": job.id,
                "state": job.state,
                "points": job.result,
            }

        def _job_path(self) -> tuple[str, str]:
            parts = self.path.strip("/").split("/")
            if len(parts) < 2 or parts[0] != "jobs" or not parts[1]:
                raise _NotFound(self.path)
            return parts[1], "/".join(parts[2:])

        def _read_json(self) -> dict:
            length = int(self.headers.get("Content-Length") or 0)
            if length > _MAX_BODY_BYTES:
                raise ConfigurationError(
                    f"request body of {length} bytes exceeds the "
                    f"{_MAX_BODY_BYTES}-byte limit"
                )
            raw = self.rfile.read(length) if length else b""
            try:
                payload = json.loads(raw or b"{}")
            except json.JSONDecodeError as exc:
                raise ConfigurationError(
                    f"request body is not valid JSON: {exc}"
                ) from exc
            if not isinstance(payload, dict):
                raise ConfigurationError(
                    "request body must be a JSON object"
                )
            return payload

        def _dispatch(self, method) -> None:
            try:
                status, body = method()
            except (_NotFound, JobNotFound) as exc:
                self._send(404, _error_body(exc))
            except QuotaExceededError as exc:
                self._send(429, _error_body(exc))
            except InvalidJobState as exc:
                self._send(409, _error_body(exc))
            except ConfigurationError as exc:
                self._send(400, _error_body(exc))
            except Exception as exc:  # pragma: no cover - last resort
                self._send(500, _error_body(exc))
            else:
                self._send(status, body)

        def _send(self, status: int, body: dict) -> None:
            data = json.dumps(body).encode()
            self.send_response(status)
            self.send_header("Content-Type", "application/json")
            self.send_header("Content-Length", str(len(data)))
            self.end_headers()
            self.wfile.write(data)

        def log_message(self, *args) -> None:
            # The service logs through its own channel; per-request
            # stderr chatter would swamp test and benchmark output.
            pass

    return Handler


class _NotFound(Exception):
    def __init__(self, path: str) -> None:
        super().__init__(f"no such route: {path}")


def _error_body(exc: BaseException) -> dict:
    return {"error": str(exc), "type": type(exc).__name__}
