"""HTTP surface of the simulation service (stdlib ``http.server``).

JSON in, JSON out, seven routes::

    POST   /jobs                 submit a sweep job (Idempotency-Key aware)
    GET    /jobs                 list jobs (?state=...&client=...)
    GET    /jobs/<id>            job status (state, progress, attempts)
    GET    /jobs/<id>/result     result document of a finished job
    POST   /jobs/<id>/requeue    return a dead job to the queue
    DELETE /jobs/<id>            cancel a queued job
    GET    /healthz              queue depth + worker liveness

Error mapping is uniform: bad specs are 400, unknown jobs 404,
operations illegal in the job's current state 409, quota rejections
429, transient store contention 503 — each with a JSON body
``{"error": ..., "type": ...}`` carrying the exception's message so
clients can show a real reason, not a status code.  Submissions may
carry an ``Idempotency-Key`` header: a repeat of an already-admitted
key returns the original job with a 200 instead of enqueuing a
duplicate, which is what makes client-side submit retries safe.  The
handler is deliberately a thin adapter: every decision lives in the
scheduler/store/fleet, which the test-suite exercises directly; the
HTTP layer adds only parsing and status codes.
"""

from __future__ import annotations

import json
import sys
import urllib.parse
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from repro.errors import (
    ConfigurationError,
    InvalidJobState,
    JobNotFound,
    QuotaExceededError,
    StoreBusyError,
)
from repro.faults import fault_point
from repro.service.jobs import JOB_STATES, JobSpec

__all__ = ["ServiceHTTPServer", "make_handler"]

_MAX_BODY_BYTES = 4 * 1024 * 1024


class ServiceHTTPServer(ThreadingHTTPServer):
    """Threaded HTTP server carrying a reference to the service."""

    daemon_threads = True
    allow_reuse_address = True
    # The http.server default backlog of 5 resets connections when a
    # burst of clients (e.g. a fleet of pollers) connects at once.
    request_queue_size = 128

    def __init__(self, address, handler, service) -> None:
        self.service = service
        super().__init__(address, handler)

    def handle_error(self, request, client_address) -> None:
        # Dropped connections — real impatient clients or injected
        # ``server.request``/``server.response`` resets — are expected
        # operational noise, not a server bug worth a stderr traceback.
        exc = sys.exc_info()[1]
        if isinstance(exc, (ConnectionResetError, BrokenPipeError)):
            return
        super().handle_error(request, client_address)


def make_handler(service) -> type[BaseHTTPRequestHandler]:
    """Build the request-handler class bound to ``service``.

    ``service`` is a :class:`repro.service.server.SimulationService`;
    only its ``scheduler``, ``store``, ``fleet`` and
    ``health_payload()`` are touched.
    """

    class Handler(BaseHTTPRequestHandler):
        protocol_version = "HTTP/1.1"
        server_version = "repro-service"

        # -- routing -------------------------------------------------

        def do_GET(self) -> None:
            self._dispatch(self._get)

        def do_POST(self) -> None:
            self._dispatch(self._post)

        def do_DELETE(self) -> None:
            self._dispatch(self._delete)

        def _split_path(self) -> tuple[str, dict]:
            parsed = urllib.parse.urlsplit(self.path)
            query = {
                key: values[-1]
                for key, values in urllib.parse.parse_qs(
                    parsed.query
                ).items()
            }
            return parsed.path, query

        def _get(self) -> tuple[int, dict]:
            path, query = self._split_path()
            if path == "/healthz":
                return 200, service.health_payload()
            if path in ("/jobs", "/jobs/"):
                return 200, self._list_jobs(query)
            job_id, tail = self._job_path(path)
            if tail == "":
                return 200, service.store.get(job_id).status_payload()
            if tail == "result":
                return 200, self._result(job_id)
            raise _NotFound(self.path)

        def _post(self) -> tuple[int, dict]:
            path, _query = self._split_path()
            if path == "/jobs":
                return self._submit()
            job_id, tail = self._job_path(path)
            if tail == "requeue":
                job = service.store.requeue_dead(job_id)
                return 200, job.status_payload()
            raise _NotFound(self.path)

        def _submit(self) -> tuple[int, dict]:
            payload = self._read_json()
            spec = JobSpec.from_mapping(payload.get("spec"))
            client = payload.get("client")
            if not isinstance(client, str) or not client:
                raise ConfigurationError(
                    "submissions require a non-empty string 'client'"
                )
            priority = payload.get("priority", 0)
            if not isinstance(priority, int):
                raise ConfigurationError(
                    f"priority must be an integer, got {priority!r}"
                )
            idempotency_key = self.headers.get("Idempotency-Key")
            job, created = service.scheduler.admit_idempotent(
                spec,
                client=client,
                priority=priority,
                idempotency_key=idempotency_key or None,
            )
            return (201 if created else 200), job.status_payload()

        def _delete(self) -> tuple[int, dict]:
            path, _query = self._split_path()
            job_id, tail = self._job_path(path)
            if tail != "":
                raise _NotFound(self.path)
            return 200, service.store.cancel(job_id).status_payload()

        # -- helpers -------------------------------------------------

        def _list_jobs(self, query: dict) -> dict:
            unknown = set(query) - {"state", "client"}
            if unknown:
                raise ConfigurationError(
                    f"unknown job-listing filters: {sorted(unknown)}"
                )
            state = query.get("state")
            if state is not None and state not in JOB_STATES:
                raise ConfigurationError(
                    f"unknown job state {state!r}; states: "
                    f"{', '.join(JOB_STATES)}"
                )
            jobs = service.store.jobs(
                state=state, client=query.get("client")
            )
            return {"jobs": [job.status_payload() for job in jobs]}

        def _result(self, job_id: str) -> dict:
            job = service.store.get(job_id)
            if job.state != "done":
                raise InvalidJobState(
                    job_id, job.state, "fetch the result of"
                )
            return {
                "id": job.id,
                "state": job.state,
                "points": job.result,
            }

        def _job_path(self, path: str) -> tuple[str, str]:
            parts = path.strip("/").split("/")
            if len(parts) < 2 or parts[0] != "jobs" or not parts[1]:
                raise _NotFound(self.path)
            return parts[1], "/".join(parts[2:])

        def _read_json(self) -> dict:
            length = int(self.headers.get("Content-Length") or 0)
            if length > _MAX_BODY_BYTES:
                raise ConfigurationError(
                    f"request body of {length} bytes exceeds the "
                    f"{_MAX_BODY_BYTES}-byte limit"
                )
            raw = self.rfile.read(length) if length else b""
            try:
                payload = json.loads(raw or b"{}")
            except json.JSONDecodeError as exc:
                raise ConfigurationError(
                    f"request body is not valid JSON: {exc}"
                ) from exc
            if not isinstance(payload, dict):
                raise ConfigurationError(
                    "request body must be a JSON object"
                )
            return payload

        def _dispatch(self, method) -> None:
            try:
                fault_point("server.request", path=self.path)
                status, body = method()
                # Fires after the handler committed its effects but
                # before any byte of the response is written — the
                # lost-response window that makes idempotency keys
                # necessary.
                fault_point("server.response", path=self.path)
            except ConnectionResetError:
                # Simulated (or real) transport drop: closing the
                # socket without a response is exactly what a dying
                # server does.  The client's retry layer owns recovery.
                self.close_connection = True
                raise
            except (_NotFound, JobNotFound) as exc:
                self._send(404, _error_body(exc))
            except QuotaExceededError as exc:
                self._send(429, _error_body(exc))
            except InvalidJobState as exc:
                self._send(409, _error_body(exc))
            except ConfigurationError as exc:
                self._send(400, _error_body(exc))
            except StoreBusyError as exc:
                self._send(503, _error_body(exc))
            except Exception as exc:  # pragma: no cover - last resort
                self._send(500, _error_body(exc))
            else:
                self._send(status, body)

        def _send(self, status: int, body: dict) -> None:
            data = json.dumps(body).encode()
            self.send_response(status)
            self.send_header("Content-Type", "application/json")
            self.send_header("Content-Length", str(len(data)))
            self.end_headers()
            self.wfile.write(data)

        def log_message(self, *args) -> None:
            # The service logs through its own channel; per-request
            # stderr chatter would swamp test and benchmark output.
            pass

    return Handler


class _NotFound(Exception):
    def __init__(self, path: str) -> None:
        super().__init__(f"no such route: {path}")


def _error_body(exc: BaseException) -> dict:
    return {"error": str(exc), "type": type(exc).__name__}
