"""Persistent job store: SQLite via the stdlib ``sqlite3`` module.

One table, ``jobs``, holds every submission: the canonical-JSON spec,
lifecycle state, retry accounting, the leasing worker and its last
heartbeat, per-point progress and (for finished jobs) the result
document.  The store is the *only* shared mutable state in the service
— scheduler, worker fleet and HTTP API all talk to it — so every
mutation happens inside an ``IMMEDIATE`` transaction and the whole
store survives a server restart: re-opening the same path finds every
job exactly where it was, and :meth:`JobStore.requeue_orphans` returns
``running`` jobs abandoned by a dead server to the queue.

Thread-safety: one connection guarded by an ``RLock``
(``check_same_thread=False``), WAL journal mode so concurrent service
processes pointing at the same path read without blocking writers, and
a generous busy timeout instead of hand-rolled retry loops.
"""

from __future__ import annotations

import json
import sqlite3
import threading
import time
from pathlib import Path

from repro.errors import InvalidJobState, JobNotFound, StoreBusyError
from repro.faults import fault_point
from repro.service.jobs import (
    ACTIVE_STATES,
    JOB_STATES,
    Job,
    JobSpec,
    new_job_id,
)

__all__ = ["JobStore"]

_SCHEMA = """
CREATE TABLE IF NOT EXISTS jobs (
    seq         INTEGER PRIMARY KEY AUTOINCREMENT,
    id          TEXT NOT NULL UNIQUE,
    client      TEXT NOT NULL,
    priority    INTEGER NOT NULL DEFAULT 0,
    state       TEXT NOT NULL,
    spec        TEXT NOT NULL,
    num_points  INTEGER NOT NULL,
    created     REAL NOT NULL,
    updated     REAL NOT NULL,
    not_before  REAL NOT NULL DEFAULT 0,
    attempts    INTEGER NOT NULL DEFAULT 0,
    worker      TEXT,
    heartbeat   REAL,
    done_points INTEGER NOT NULL DEFAULT 0,
    error       TEXT,
    result      TEXT,
    idem_key    TEXT
);
CREATE INDEX IF NOT EXISTS jobs_state ON jobs (state, not_before);
CREATE INDEX IF NOT EXISTS jobs_client ON jobs (client, state);
CREATE UNIQUE INDEX IF NOT EXISTS jobs_idem ON jobs (idem_key)
    WHERE idem_key IS NOT NULL;
"""

#: sqlite3.OperationalError messages that mean "back off and retry".
_BUSY_MARKERS = ("database is locked", "database is busy")


def _translate_busy(exc: sqlite3.OperationalError) -> StoreBusyError | None:
    message = str(exc).lower()
    if any(marker in message for marker in _BUSY_MARKERS):
        return StoreBusyError(f"job store is busy: {exc}")
    return None


class JobStore:
    """SQLite-backed persistent queue + result store for sweep jobs."""

    def __init__(self, path: str | Path) -> None:
        self.path = str(path)
        self._lock = threading.RLock()
        self._conn = sqlite3.connect(
            self.path,
            check_same_thread=False,
            timeout=30.0,
            isolation_level=None,  # autocommit; explicit BEGIN below
        )
        self._conn.row_factory = sqlite3.Row
        with self._lock:
            if self.path != ":memory:":
                self._conn.execute("PRAGMA journal_mode=WAL")
            self._conn.execute("PRAGMA busy_timeout=30000")
            # Stores created before the idempotency column existed get
            # it added in place; executescript's CREATE TABLE IF NOT
            # EXISTS is a no-op for them, so migrate first.
            columns = {
                row["name"]
                for row in self._conn.execute(
                    "PRAGMA table_info(jobs)"
                ).fetchall()
            }
            if columns and "idem_key" not in columns:
                self._conn.execute(
                    "ALTER TABLE jobs ADD COLUMN idem_key TEXT"
                )
            self._conn.executescript(_SCHEMA)

    # -- lifecycle ---------------------------------------------------

    def close(self) -> None:
        with self._lock:
            self._conn.close()

    def __enter__(self) -> "JobStore":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- writes ------------------------------------------------------

    def submit(
        self,
        spec: JobSpec,
        *,
        client: str,
        priority: int = 0,
        idempotency_key: str | None = None,
    ) -> Job:
        """Persist a new ``queued`` job and return its record.

        ``idempotency_key`` makes the submit replay-safe: a second
        submission with the same key (a client retrying because the
        first response was lost) returns the job the first attempt
        created instead of enqueuing a duplicate.  Enforced by a unique
        index, so the guarantee holds across service processes sharing
        the database file, not just within one scheduler lock.
        """
        now = time.time()
        job_id = new_job_id()
        try:
            with self._transaction("submit"):
                self._conn.execute(
                    "INSERT INTO jobs (id, client, priority, state, spec,"
                    " num_points, created, updated, idem_key)"
                    " VALUES (?, ?, ?, 'queued', ?, ?, ?, ?, ?)",
                    (
                        job_id,
                        str(client),
                        int(priority),
                        spec.canonical_json(),
                        spec.num_points,
                        now,
                        now,
                        idempotency_key,
                    ),
                )
        except sqlite3.IntegrityError:
            existing = (
                self.find_by_idempotency_key(idempotency_key)
                if idempotency_key
                else None
            )
            if existing is not None:
                return existing
            raise
        return self.get(job_id)

    def lease_next(
        self, worker: str, *, now: float | None = None
    ) -> Job | None:
        """Atomically claim the best runnable queued job, if any.

        Ordering (the scheduler policy, executed store-side so that
        claim-and-order is one transaction): highest ``priority``
        first; ties broken *fair-share* — the client with the fewest
        currently ``running`` jobs goes first, so one tenant flooding
        the queue cannot starve the others; final tie-break is FIFO by
        submission sequence.  Jobs whose retry backoff has not elapsed
        (``not_before`` in the future) are invisible.
        """
        now = time.time() if now is None else now
        with self._transaction("lease"):
            row = self._conn.execute(
                "SELECT j.* FROM jobs j"
                " WHERE j.state = 'queued' AND j.not_before <= ?"
                " ORDER BY j.priority DESC,"
                "  (SELECT COUNT(*) FROM jobs r"
                "   WHERE r.state = 'running'"
                "   AND r.client = j.client) ASC,"
                "  j.seq ASC"
                " LIMIT 1",
                (now,),
            ).fetchone()
            if row is None:
                return None
            self._conn.execute(
                "UPDATE jobs SET state = 'running', worker = ?,"
                " heartbeat = ?, updated = ? WHERE id = ?",
                (worker, now, now, row["id"]),
            )
        return self.get(row["id"])

    def record_heartbeat(
        self, job_id: str, *, done_points: int | None = None
    ) -> None:
        """Refresh a running job's liveness (and optionally progress)."""
        now = time.time()
        with self._transaction("heartbeat"):
            if done_points is None:
                cursor = self._conn.execute(
                    "UPDATE jobs SET heartbeat = ?, updated = ?"
                    " WHERE id = ? AND state = 'running'",
                    (now, now, job_id),
                )
            else:
                cursor = self._conn.execute(
                    "UPDATE jobs SET heartbeat = ?, updated = ?,"
                    " done_points = ?"
                    " WHERE id = ? AND state = 'running'",
                    (now, now, int(done_points), job_id),
                )
            if cursor.rowcount == 0:
                self._require(job_id)  # raises JobNotFound if absent

    def complete(self, job_id: str, result: list) -> None:
        """``running`` → ``done`` with the job's result document."""
        self._transition(
            job_id,
            expected="running",
            state="done",
            extra_sql=", result = ?, done_points = num_points,"
            " worker = NULL",
            extra_args=(json.dumps(result),),
            operation="complete",
        )

    def fail(
        self,
        job_id: str,
        error: str,
        *,
        retry_at: float | None = None,
        dead: bool = False,
    ) -> None:
        """Record a failure: terminal, dead, or back to the queue.

        With ``retry_at`` the job returns to ``queued`` with its
        attempt counter bumped and ``not_before`` set, so the scheduler
        hides it until the backoff elapses.  Without, it settles:
        ``dead=True`` means the infrastructure exhausted its transient
        retry budget (the job is eligible for an explicit requeue);
        ``dead=False`` means the job itself is hopeless and is
        terminally ``failed``.  The error message is preserved either
        way.
        """
        if retry_at is not None:
            self._transition(
                job_id,
                expected="running",
                state="queued",
                extra_sql=", attempts = attempts + 1, not_before = ?,"
                " error = ?, worker = NULL, heartbeat = NULL",
                extra_args=(float(retry_at), str(error)),
                operation="retry",
            )
        else:
            self._transition(
                job_id,
                expected="running",
                state="dead" if dead else "failed",
                extra_sql=", attempts = attempts + 1, error = ?,"
                " worker = NULL",
                extra_args=(str(error),),
                operation="fail",
            )

    def requeue_dead(self, job_id: str) -> Job:
        """``dead`` → ``queued`` with a fresh retry budget.

        The operator path out of ``dead``: attempts and backoff reset,
        the recorded error is kept until the next attempt overwrites
        it.  Any other state raises :class:`InvalidJobState`.
        """
        self._transition(
            job_id,
            expected="dead",
            state="queued",
            extra_sql=", attempts = 0, not_before = 0, worker = NULL,"
            " heartbeat = NULL, done_points = 0",
            operation="requeue",
        )
        return self.get(job_id)

    def cancel(self, job_id: str) -> Job:
        """``queued`` → ``cancelled``; any other state is an error."""
        self._transition(
            job_id,
            expected="queued",
            state="cancelled",
            operation="cancel",
        )
        return self.get(job_id)

    def requeue_orphans(self) -> int:
        """Return abandoned ``running`` jobs to the queue.

        Called at service startup: any job still marked ``running``
        was leased by a worker of a previous server process that died
        without completing it.  Progress resets (the sweep cache, not
        the store, remembers finished points — re-running the job
        skips them for free).
        """
        now = time.time()
        with self._transaction("requeue-orphans"):
            cursor = self._conn.execute(
                "UPDATE jobs SET state = 'queued', worker = NULL,"
                " heartbeat = NULL, done_points = 0, updated = ?"
                " WHERE state = 'running'",
                (now,),
            )
            return cursor.rowcount

    # -- reads -------------------------------------------------------

    def get(self, job_id: str) -> Job:
        with self._lock:
            row = self._require(job_id)
        return self._job_from_row(row)

    def find_by_idempotency_key(self, key: str) -> Job | None:
        """The job a previous submit stored under ``key``, if any."""
        with self._lock:
            row = self._conn.execute(
                "SELECT * FROM jobs WHERE idem_key = ?", (key,)
            ).fetchone()
        return self._job_from_row(row) if row is not None else None

    def jobs(
        self, *, client: str | None = None, state: str | None = None
    ) -> list[Job]:
        """All jobs in submission order, optionally filtered."""
        clauses, args = [], []
        if client is not None:
            clauses.append("client = ?")
            args.append(client)
        if state is not None:
            clauses.append("state = ?")
            args.append(state)
        where = f" WHERE {' AND '.join(clauses)}" if clauses else ""
        with self._lock:
            rows = self._conn.execute(
                f"SELECT * FROM jobs{where} ORDER BY seq", args
            ).fetchall()
        return [self._job_from_row(row) for row in rows]

    def active_load(self, client: str) -> tuple[int, int]:
        """(active jobs, active grid points) a client currently holds.

        The quota currency: ``queued`` + ``running`` work only —
        finished jobs never count against a tenant.
        """
        placeholders = ",".join("?" for _ in ACTIVE_STATES)
        with self._lock:
            row = self._conn.execute(
                f"SELECT COUNT(*) AS jobs,"
                f" COALESCE(SUM(num_points), 0) AS points"
                f" FROM jobs WHERE client = ?"
                f" AND state IN ({placeholders})",
                (client, *ACTIVE_STATES),
            ).fetchone()
        return int(row["jobs"]), int(row["points"])

    def stats(self) -> dict:
        """Queue-depth snapshot for ``GET /healthz``."""
        with self._lock:
            rows = self._conn.execute(
                "SELECT state, COUNT(*) AS count FROM jobs"
                " GROUP BY state"
            ).fetchall()
        counts = {state: 0 for state in JOB_STATES}
        counts.update({row["state"]: int(row["count"]) for row in rows})
        return counts

    # -- internals ---------------------------------------------------

    def _transaction(self, operation: str = "write"):
        return _Transaction(self._conn, self._lock, operation)

    def _require(self, job_id: str) -> sqlite3.Row:
        row = self._conn.execute(
            "SELECT * FROM jobs WHERE id = ?", (job_id,)
        ).fetchone()
        if row is None:
            raise JobNotFound(job_id)
        return row

    def _transition(
        self,
        job_id: str,
        *,
        expected: str,
        state: str,
        extra_sql: str = "",
        extra_args: tuple = (),
        operation: str,
    ) -> None:
        """Guarded state change: fails loudly on a stale transition."""
        now = time.time()
        with self._transaction(operation):
            cursor = self._conn.execute(
                f"UPDATE jobs SET state = ?, updated = ?{extra_sql}"
                " WHERE id = ? AND state = ?",
                (state, now, *extra_args, job_id, expected),
            )
            if cursor.rowcount == 0:
                row = self._require(job_id)
                raise InvalidJobState(job_id, row["state"], operation)

    def _job_from_row(self, row: sqlite3.Row) -> Job:
        return Job(
            id=row["id"],
            client=row["client"],
            priority=int(row["priority"]),
            state=row["state"],
            spec=JobSpec.from_json(row["spec"]),
            created=float(row["created"]),
            updated=float(row["updated"]),
            attempts=int(row["attempts"]),
            not_before=float(row["not_before"]),
            worker=row["worker"],
            heartbeat=(
                float(row["heartbeat"])
                if row["heartbeat"] is not None
                else None
            ),
            done_points=int(row["done_points"]),
            error=row["error"],
            result=(
                json.loads(row["result"])
                if row["result"] is not None
                else None
            ),
        )


class _Transaction:
    """``with store._transaction():`` — lock + IMMEDIATE transaction.

    ``BEGIN IMMEDIATE`` takes the write lock up front so a lease's
    SELECT-then-UPDATE pair is atomic against other service processes
    sharing the database file, not only against sibling threads.

    Lock-contention errors (``database is locked``, surfaced despite
    the busy timeout under heavy multi-process load — or injected by
    the ``store.transaction`` fault point) are translated to the typed,
    retryable :class:`~repro.errors.StoreBusyError` at the BEGIN and
    COMMIT boundaries, so no caller ever pattern-matches on sqlite3
    internals.
    """

    def __init__(
        self,
        conn: sqlite3.Connection,
        lock: threading.RLock,
        operation: str = "write",
    ) -> None:
        self._conn = conn
        self._lock = lock
        self._operation = operation

    def __enter__(self) -> sqlite3.Connection:
        try:
            fault_point("store.transaction", operation=self._operation)
        except sqlite3.OperationalError as exc:
            busy = _translate_busy(exc)
            if busy is not None:
                raise busy from exc
            raise
        self._lock.acquire()
        try:
            self._conn.execute("BEGIN IMMEDIATE")
        except sqlite3.OperationalError as exc:
            self._lock.release()
            busy = _translate_busy(exc)
            if busy is not None:
                raise busy from exc
            raise
        return self._conn

    def __exit__(self, exc_type, exc, tb) -> None:
        try:
            if exc_type is None:
                try:
                    self._conn.execute("COMMIT")
                except sqlite3.OperationalError as err:
                    self._conn.execute("ROLLBACK")
                    busy = _translate_busy(err)
                    if busy is not None:
                        raise busy from err
                    raise
            else:
                self._conn.execute("ROLLBACK")
        finally:
            self._lock.release()
