"""Thin HTTP client for the simulation service (stdlib ``urllib``).

:class:`ServiceClient` speaks the submit/poll/result protocol and maps
the service's JSON error envelopes back onto the library's exception
hierarchy, so driving a remote service feels like calling the library:
a quota rejection raises :class:`~repro.errors.QuotaExceededError`, an
unknown job :class:`~repro.errors.JobNotFound`, a result requested too
early :class:`~repro.errors.InvalidJobState` — the same types the
in-process scheduler and store raise.

Transport robustness: requests that are safe to repeat — every GET,
plus submits, which carry an ``Idempotency-Key`` the server
deduplicates on — retry transient transport failures (connection
refused/reset, timeouts, HTTP 503 store-busy) with jittered exponential
backoff.  The jitter stream is seeded from the client id, so a fleet of
identically-configured clients decorrelates instead of retrying in
lockstep, while any single client's schedule stays reproducible.
"""

from __future__ import annotations

import hashlib
import http.client
import json
import random
import time
import urllib.error
import urllib.request

from repro.errors import (
    ConfigurationError,
    InvalidJobState,
    JobNotFound,
    QuotaExceededError,
    ServiceError,
    StoreBusyError,
)
from repro.faults import fault_point
from repro.service.jobs import JobSpec

__all__ = ["ServiceClient"]

_ERROR_TYPES: dict[str, type[Exception]] = {
    "ConfigurationError": ConfigurationError,
    "QuotaExceededError": QuotaExceededError,
    "InvalidJobState": InvalidJobState,
    "JobNotFound": JobNotFound,
    "StoreBusyError": StoreBusyError,
}


class ServiceClient:
    """Submit, poll, fetch and cancel jobs against a running service."""

    def __init__(
        self,
        base_url: str,
        *,
        client_id: str = "default",
        timeout: float = 30.0,
        max_retries: int = 4,
        retry_base: float = 0.05,
        retry_cap: float = 1.0,
    ) -> None:
        self.base_url = base_url.rstrip("/")
        self.client_id = client_id
        self.timeout = timeout
        self.max_retries = int(max_retries)
        self.retry_base = float(retry_base)
        self.retry_cap = float(retry_cap)
        # Seeded per client id: deterministic for one client,
        # decorrelated across a fleet.
        self._rng = random.Random(f"repro-client:{client_id}")

    # -- protocol verbs ----------------------------------------------

    def submit(
        self,
        spec: JobSpec | dict,
        *,
        priority: int = 0,
        client_id: str | None = None,
    ) -> str:
        """Submit a sweep job; returns the new job's id.

        Retry-safe: the request carries an ``Idempotency-Key`` derived
        from the spec digest plus a per-call nonce, so a retried submit
        whose first attempt *did* land (response lost on the wire)
        returns the already-created job instead of enqueuing a
        duplicate.  Distinct calls get distinct nonces — deliberately
        resubmitting the same work still creates a new job.
        """
        if isinstance(spec, JobSpec):
            spec = json.loads(spec.canonical_json())
        digest = hashlib.sha256(
            json.dumps(spec, sort_keys=True).encode()
        ).hexdigest()[:16]
        nonce = self._rng.getrandbits(64)
        key = f"{client_id or self.client_id}:{digest}:{nonce:016x}"
        payload = {
            "client": client_id or self.client_id,
            "priority": priority,
            "spec": spec,
        }
        return self._request(
            "POST",
            "/jobs",
            payload,
            headers={"Idempotency-Key": key},
            retry=True,
        )["id"]

    def status(self, job_id: str) -> dict:
        return self._request("GET", f"/jobs/{job_id}")

    def result(self, job_id: str) -> dict:
        """Result document of a finished job (409 until it is done)."""
        return self._request("GET", f"/jobs/{job_id}/result")

    def cancel(self, job_id: str) -> dict:
        return self._request("DELETE", f"/jobs/{job_id}")

    def requeue(self, job_id: str) -> dict:
        """Return a ``dead`` job to the queue with a fresh retry budget."""
        return self._request("POST", f"/jobs/{job_id}/requeue")

    def jobs(
        self, *, state: str | None = None, client_id: str | None = None
    ) -> list[dict]:
        """List jobs on the service, optionally filtered."""
        filters = []
        if state is not None:
            filters.append(f"state={state}")
        if client_id is not None:
            filters.append(f"client={client_id}")
        query = f"?{'&'.join(filters)}" if filters else ""
        return self._request("GET", f"/jobs{query}")["jobs"]

    def health(self) -> dict:
        return self._request("GET", "/healthz")

    def wait(
        self,
        job_id: str,
        *,
        timeout: float = 60.0,
        poll_interval: float = 0.05,
        poll_cap: float = 1.0,
    ) -> dict:
        """Poll until the job leaves the queue/worker, return its result.

        The poll interval starts at ``poll_interval`` and grows
        geometrically to ``poll_cap`` with per-sleep jitter, so a fleet
        of waiting clients neither hammers a busy server in lockstep
        nor oversleeps a fast job.  Raises :class:`ServiceError` if the
        job settles without a result (``failed``/``cancelled``/
        ``dead``), :class:`TimeoutError` if it is still unfinished at
        ``timeout``.
        """
        deadline = time.monotonic() + timeout
        interval = poll_interval
        while True:
            status = self.status(job_id)
            state = status["state"]
            if state == "done":
                return self.result(job_id)
            if state in ("failed", "cancelled", "dead"):
                raise ServiceError(
                    f"job {job_id} ended {state}: {status.get('error')}"
                )
            if time.monotonic() >= deadline:
                raise TimeoutError(
                    f"job {job_id} still {state} after {timeout:g}s"
                )
            time.sleep(
                min(interval, poll_cap) * (0.5 + self._rng.random())
            )
            interval = min(interval * 1.7, poll_cap)

    # -- transport ---------------------------------------------------

    def _backoff(self, attempt: int) -> float:
        """Jittered exponential delay before retry ``attempt``."""
        return min(
            self.retry_base * (2**attempt), self.retry_cap
        ) * (0.5 + self._rng.random())

    def _request(
        self,
        method: str,
        path: str,
        payload: dict | None = None,
        *,
        headers: dict | None = None,
        retry: bool | None = None,
    ) -> dict:
        retryable = (method == "GET") if retry is None else retry
        data = (
            json.dumps(payload).encode() if payload is not None else None
        )
        request_headers = {"Content-Type": "application/json"}
        if headers:
            request_headers.update(headers)
        attempt = 0
        while True:
            request = urllib.request.Request(
                f"{self.base_url}{path}",
                method=method,
                data=data,
                headers=request_headers,
            )
            try:
                fault_point("client.request", method=method, path=path)
                with urllib.request.urlopen(
                    request, timeout=self.timeout
                ) as response:
                    return json.loads(response.read() or b"{}")
            except urllib.error.HTTPError as exc:
                error = _mapped_error(exc)
                if (
                    retryable
                    and isinstance(error, StoreBusyError)
                    and attempt < self.max_retries
                ):
                    time.sleep(self._backoff(attempt))
                    attempt += 1
                    continue
                raise error from None
            except (
                urllib.error.URLError,
                http.client.HTTPException,
                OSError,
            ) as exc:
                # HTTPError (handled above) subclasses URLError, so
                # only genuine transport failures land here: refused or
                # reset connections, timeouts, torn HTTP framing.
                if retryable and attempt < self.max_retries:
                    time.sleep(self._backoff(attempt))
                    attempt += 1
                    continue
                reason = getattr(exc, "reason", exc)
                raise ServiceError(
                    f"cannot reach service at {self.base_url} "
                    f"(after {attempt + 1} attempt(s)): {reason}"
                ) from exc


def _mapped_error(exc: urllib.error.HTTPError) -> Exception:
    """Rebuild the library exception the service reported."""
    try:
        body = json.loads(exc.read() or b"{}")
    except (json.JSONDecodeError, OSError):
        body = {}
    message = body.get("error") or f"HTTP {exc.code}"
    error_type = _ERROR_TYPES.get(body.get("type", ""))
    if error_type is JobNotFound or error_type is InvalidJobState:
        # Their constructors take structured arguments the envelope
        # does not carry; re-raise with the flat message instead.
        rebuilt = error_type.__new__(error_type)
        Exception.__init__(rebuilt, message)
        return rebuilt
    if error_type is not None:
        return error_type(message)
    return ServiceError(f"HTTP {exc.code}: {message}")
