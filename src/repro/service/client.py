"""Thin HTTP client for the simulation service (stdlib ``urllib``).

:class:`ServiceClient` speaks the submit/poll/result protocol and maps
the service's JSON error envelopes back onto the library's exception
hierarchy, so driving a remote service feels like calling the library:
a quota rejection raises :class:`~repro.errors.QuotaExceededError`, an
unknown job :class:`~repro.errors.JobNotFound`, a result requested too
early :class:`~repro.errors.InvalidJobState` — the same types the
in-process scheduler and store raise.
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request

from repro.errors import (
    ConfigurationError,
    InvalidJobState,
    JobNotFound,
    QuotaExceededError,
    ServiceError,
)
from repro.service.jobs import JobSpec

__all__ = ["ServiceClient"]

_ERROR_TYPES: dict[str, type[Exception]] = {
    "ConfigurationError": ConfigurationError,
    "QuotaExceededError": QuotaExceededError,
    "InvalidJobState": InvalidJobState,
    "JobNotFound": JobNotFound,
}


class ServiceClient:
    """Submit, poll, fetch and cancel jobs against a running service."""

    def __init__(
        self,
        base_url: str,
        *,
        client_id: str = "default",
        timeout: float = 30.0,
    ) -> None:
        self.base_url = base_url.rstrip("/")
        self.client_id = client_id
        self.timeout = timeout

    # -- protocol verbs ----------------------------------------------

    def submit(
        self,
        spec: JobSpec | dict,
        *,
        priority: int = 0,
        client_id: str | None = None,
    ) -> str:
        """Submit a sweep job; returns the new job's id."""
        if isinstance(spec, JobSpec):
            spec = json.loads(spec.canonical_json())
        payload = {
            "client": client_id or self.client_id,
            "priority": priority,
            "spec": spec,
        }
        return self._request("POST", "/jobs", payload)["id"]

    def status(self, job_id: str) -> dict:
        return self._request("GET", f"/jobs/{job_id}")

    def result(self, job_id: str) -> dict:
        """Result document of a finished job (409 until it is done)."""
        return self._request("GET", f"/jobs/{job_id}/result")

    def cancel(self, job_id: str) -> dict:
        return self._request("DELETE", f"/jobs/{job_id}")

    def health(self) -> dict:
        return self._request("GET", "/healthz")

    def wait(
        self,
        job_id: str,
        *,
        timeout: float = 60.0,
        poll_interval: float = 0.05,
    ) -> dict:
        """Poll until the job leaves the queue/worker, return its result.

        Raises :class:`ServiceError` if the job fails or is cancelled,
        :class:`TimeoutError` if it is still unfinished at ``timeout``.
        """
        deadline = time.monotonic() + timeout
        while True:
            status = self.status(job_id)
            state = status["state"]
            if state == "done":
                return self.result(job_id)
            if state in ("failed", "cancelled"):
                raise ServiceError(
                    f"job {job_id} ended {state}: {status.get('error')}"
                )
            if time.monotonic() >= deadline:
                raise TimeoutError(
                    f"job {job_id} still {state} after {timeout:g}s"
                )
            time.sleep(poll_interval)

    # -- transport ---------------------------------------------------

    def _request(
        self, method: str, path: str, payload: dict | None = None
    ) -> dict:
        request = urllib.request.Request(
            f"{self.base_url}{path}",
            method=method,
            data=(
                json.dumps(payload).encode()
                if payload is not None
                else None
            ),
            headers={"Content-Type": "application/json"},
        )
        try:
            with urllib.request.urlopen(
                request, timeout=self.timeout
            ) as response:
                return json.loads(response.read() or b"{}")
        except urllib.error.HTTPError as exc:
            raise _mapped_error(exc) from None
        except urllib.error.URLError as exc:
            raise ServiceError(
                f"cannot reach service at {self.base_url}: {exc.reason}"
            ) from exc


def _mapped_error(exc: urllib.error.HTTPError) -> Exception:
    """Rebuild the library exception the service reported."""
    try:
        body = json.loads(exc.read() or b"{}")
    except (json.JSONDecodeError, OSError):
        body = {}
    message = body.get("error") or f"HTTP {exc.code}"
    error_type = _ERROR_TYPES.get(body.get("type", ""))
    if error_type is JobNotFound or error_type is InvalidJobState:
        # Their constructors take structured arguments the envelope
        # does not carry; re-raise with the flat message instead.
        rebuilt = error_type.__new__(error_type)
        Exception.__init__(rebuilt, message)
        return rebuilt
    if error_type is not None:
        return error_type(message)
    return ServiceError(f"HTTP {exc.code}: {message}")
