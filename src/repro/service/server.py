"""Service assembly: store + scheduler + fleet + HTTP front end.

:class:`SimulationService` wires the pieces into one long-running
object with a small lifecycle: ``start()`` re-queues orphaned jobs
from a previous process, starts the worker fleet and (optionally) the
threaded HTTP server; ``shutdown()`` drains the fleet gracefully and
closes the store.  Also usable as a context manager::

    with SimulationService(db_path, cache_dir=..., port=0) as service:
        client = ServiceClient(service.url)
        ...

``port=0`` binds an ephemeral port — ``service.port`` / ``service.url``
report the bound address, which is how tests, the smoke-test CI job and
the benchmark run many services side by side without collisions.
"""

from __future__ import annotations

import threading
from pathlib import Path

from repro.faults import active_fault_plan
from repro.service.api import ServiceHTTPServer, make_handler
from repro.service.scheduler import QuotaPolicy, Scheduler
from repro.service.store import JobStore
from repro.service.workers import JobRunner, WorkerFleet

__all__ = ["SimulationService"]


class SimulationService:
    """A multi-tenant sweep service over one store and result cache."""

    def __init__(
        self,
        db_path: str | Path,
        *,
        cache_dir: str | Path | None = None,
        host: str = "127.0.0.1",
        port: int | None = 0,
        num_workers: int = 2,
        quota: QuotaPolicy | None = None,
        job_timeout: float | None = None,
        max_retries: int = 2,
        backoff_base: float = 0.25,
        runner: JobRunner | None = None,
    ) -> None:
        self.store = JobStore(db_path)
        self.scheduler = Scheduler(self.store, quota)
        self.fleet = WorkerFleet(
            self.store,
            self.scheduler,
            cache_dir=cache_dir,
            num_workers=num_workers,
            job_timeout=job_timeout,
            max_retries=max_retries,
            backoff_base=backoff_base,
            runner=runner,
        )
        self._host = host
        self._port = port
        self._httpd: ServiceHTTPServer | None = None
        self._http_thread: threading.Thread | None = None
        self.requeued_orphans = 0

    # -- lifecycle ---------------------------------------------------

    def start(self) -> "SimulationService":
        """Recover orphans, start workers, bind and serve HTTP."""
        self.requeued_orphans = self.store.requeue_orphans()
        self.fleet.start()
        if self._port is not None:
            self._httpd = ServiceHTTPServer(
                (self._host, self._port), make_handler(self), self
            )
            self._http_thread = threading.Thread(
                target=self._httpd.serve_forever,
                name="repro-service-http",
                daemon=True,
            )
            self._http_thread.start()
        return self

    def shutdown(self, *, drain_timeout: float | None = 30.0) -> None:
        """Stop serving, drain in-flight jobs, close the store."""
        if self._httpd is not None:
            self._httpd.shutdown()
            self._httpd.server_close()
            if self._http_thread is not None:
                self._http_thread.join(5.0)
            self._httpd = None
            self._http_thread = None
        self.fleet.drain(drain_timeout)
        self.store.close()

    def __enter__(self) -> "SimulationService":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.shutdown()

    # -- observability -----------------------------------------------

    @property
    def port(self) -> int | None:
        if self._httpd is None:
            return None
        return self._httpd.server_address[1]

    @property
    def url(self) -> str:
        if self._httpd is None:
            raise RuntimeError("HTTP server is not running")
        return f"http://{self._host}:{self.port}"

    def health_payload(self) -> dict:
        """The ``GET /healthz`` document."""
        counts = self.store.stats()
        workers = self.fleet.health()
        healthy = (
            workers["alive"] == workers["configured"]
            and not workers["draining"]
        )
        plan = active_fault_plan()
        return {
            "status": "ok" if healthy else "degraded",
            "queue_depth": counts["queued"],
            "running": counts["running"],
            "jobs": counts,
            "workers": workers,
            # Chaos observability: a service running under an armed
            # fault plan says so, so nobody mistakes injected turbulence
            # for a production incident.
            "fault_plan": None if plan is None else plan.summary(),
        }
