"""Simulation-as-a-service: persistent jobs, elastic workers, HTTP API.

The sweep layer measures a grid in-process and exits; this package
lifts it into a long-running multi-tenant service:

* :class:`~repro.service.jobs.JobSpec` / ``Job`` — canonical-JSON job
  model with the ``queued → running → done/failed/cancelled``
  lifecycle;
* :class:`~repro.service.store.JobStore` — persistent SQLite store
  that survives restarts and re-queues orphaned running jobs;
* :class:`~repro.service.scheduler.Scheduler` +
  :class:`~repro.service.scheduler.QuotaPolicy` — priority +
  fair-share leasing and per-client quota admission;
* :class:`~repro.service.workers.WorkerFleet` — leased execution with
  heartbeats, per-job timeouts and retry-with-backoff, running every
  job through the ordinary batch-first sweep path into one shared
  result cache;
* :class:`~repro.service.server.SimulationService` — the assembled
  service with its stdlib-HTTP submit/poll/result API;
* :class:`~repro.service.client.ServiceClient` — thin client used by
  the CLI verbs (``repro serve/submit/status/result``), the tests and
  ``examples/service_quickstart.py``.
"""

from repro.service.client import ServiceClient
from repro.service.jobs import JOB_STATES, Job, JobSpec
from repro.service.scheduler import QuotaPolicy, Scheduler
from repro.service.server import SimulationService
from repro.service.store import JobStore
from repro.service.workers import WorkerFleet, run_sweep_job

__all__ = [
    "JOB_STATES",
    "Job",
    "JobSpec",
    "JobStore",
    "QuotaPolicy",
    "Scheduler",
    "ServiceClient",
    "SimulationService",
    "WorkerFleet",
    "run_sweep_job",
]
