"""Worker fleet: leased execution of sweep jobs with health accounting.

A :class:`WorkerFleet` runs a pool of daemon threads.  Each worker
loops: lease the best queued job from the scheduler, execute it through
the ordinary batch-first sweep path (:func:`repro.sweep.run_sweep` with
``on_error="skip"``, so per-point failures become structured entries in
the result instead of aborting the job), and record the outcome in the
store.  While a job runs, the worker emits heartbeats — both
periodically and per finished grid point (which doubles as progress
reporting) — so ``GET /healthz`` and job status always reflect live
workers, not wishful thinking.

Failure handling distinguishes *permanent* errors (the job can never
succeed — see :data:`PERMANENT_FAILURE_TYPES`, a table-driven predicate
covering the ``ConfigurationError`` family, structural
``StateError``/``GraphError`` and any ``SweepPointError`` wrapping one
of those) from *transient* ones (anything else, including the per-job
:class:`~repro.errors.JobTimeout` and injected faults): transient
failures are retried with jittered exponential backoff — jitter decorrelates
a requeue storm so a fleet of retrying workers cannot thundering-herd
the store — until the retry budget is exhausted, at which point the job
settles in the ``dead`` state (requeue-able once the turbulence
passes) rather than terminal ``failed``.  Because finished points live
in the shared sweep cache, a retried job resumes instead of
restarting.

Shutdown is a graceful drain: workers finish the job in hand, stop
leasing new ones, and join.  A worker killed mid-job (process death)
leaves a ``running`` row behind; the store re-queues such orphans at
the next service startup.
"""

from __future__ import annotations

import hashlib
import math
import threading
import time
from collections.abc import Callable
from pathlib import Path

from repro.errors import (
    ConfigurationError,
    GraphError,
    InjectedFaultError,
    JobTimeout,
    StateError,
    StoreBusyError,
    SweepPointError,
)
from repro.faults import fault_point
from repro.service.jobs import Job
from repro.service.scheduler import Scheduler
from repro.service.store import JobStore
from repro.sweep import run_sweep

__all__ = [
    "PERMANENT_FAILURE_TYPES",
    "WorkerFleet",
    "is_permanent_failure",
    "run_sweep_job",
]

#: A job runner: ``(job, progress) -> result document`` where
#: ``progress(done, total)`` reports finished grid points.  Injectable
#: so tests can exercise timeout/retry paths without real sweeps.
JobRunner = Callable[[Job, Callable[[int, int], None]], list]

#: Error types for which retrying is hopeless: resubmitting the same
#: work would fail identically, so the job goes straight to ``failed``.
#: Table-driven on purpose — tests (and deployments with bespoke
#: runner exceptions) extend it with ``PERMANENT_FAILURE_TYPES.append``
#: instead of monkeypatching classification logic.  ``isinstance``
#: matching means the whole ``ConfigurationError`` family (SpecError-
#: style subclasses included) is covered by its base entry.
PERMANENT_FAILURE_TYPES: list[type[BaseException]] = [
    ConfigurationError,
    StateError,
    GraphError,
]


def is_permanent_failure(error: BaseException) -> bool:
    """True iff retrying ``error`` can never succeed.

    A :class:`SweepPointError` is classified by what it wraps: the
    sweep driver chains the real failure as ``__cause__``, and a grid
    point that failed with a ``ConfigurationError`` is just as hopeless
    wrapped as bare.
    """
    seen = 0
    while isinstance(error, SweepPointError) and error.__cause__ is not None:
        error = error.__cause__
        seen += 1
        if seen > 10:  # defensive: a cause cycle must not hang a worker
            break
    return isinstance(error, tuple(PERMANENT_FAILURE_TYPES))


def _jitter(token: str) -> float:
    """Deterministic uniform in [0, 1) from a string token.

    Hash-derived rather than drawn from an RNG so backoff schedules are
    a pure function of (job id, attempt) — replayable under a fault
    plan — while still decorrelating concurrent workers.
    """
    digest = hashlib.sha256(token.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") / 2**64


def _jsonable(value: float) -> float | None:
    """NaN → None so result documents stay strict JSON."""
    return None if math.isnan(value) else float(value)


def run_sweep_job(
    job: Job,
    progress: Callable[[int, int], None],
    *,
    cache_dir: str | Path | None,
) -> list:
    """Execute one job through the batch-first sweep driver.

    Results land in (and resume from) the shared on-disk point cache:
    two jobs measuring overlapping grids share work, and a retried or
    re-submitted job re-serves finished points without re-running them.
    Per-point failures are recorded (``on_error="skip"``), so the
    result document always covers the full grid.
    """
    points = run_sweep(
        job.spec.to_sweep_spec(),
        cache_dir=cache_dir,
        measure=job.spec.measure,
        on_error="skip",
        # A torn cache file (crashed writer, disk fault) must not brick
        # the job on every retry: discard and re-measure the point.
        on_corrupt="remeasure",
        progress=lambda done, total, _point: progress(done, total),
    )
    return [
        {
            "params": point.params,
            "values": [_jsonable(v) for v in point.values],
            "median": _jsonable(point.median),
            "censored": point.censored,
            "error": point.error,
        }
        for point in points
    ]


class WorkerFleet:
    """A pool of leasing worker threads over one store + scheduler."""

    def __init__(
        self,
        store: JobStore,
        scheduler: Scheduler,
        *,
        cache_dir: str | Path | None = None,
        num_workers: int = 2,
        job_timeout: float | None = None,
        max_retries: int = 2,
        backoff_base: float = 0.25,
        heartbeat_interval: float = 0.5,
        poll_interval: float = 0.05,
        runner: JobRunner | None = None,
        name: str = "worker",
    ) -> None:
        if num_workers < 0:
            raise ConfigurationError(
                f"num_workers must be >= 0, got {num_workers}"
            )
        if max_retries < 0:
            raise ConfigurationError(
                f"max_retries must be >= 0, got {max_retries}"
            )
        self.store = store
        self.scheduler = scheduler
        self.cache_dir = cache_dir
        self.num_workers = num_workers
        self.job_timeout = job_timeout
        self.max_retries = max_retries
        self.backoff_base = backoff_base
        self.heartbeat_interval = heartbeat_interval
        self.poll_interval = poll_interval
        self._runner = runner
        self._name = name
        self._stop = threading.Event()
        self._threads: list[threading.Thread] = []

    # -- lifecycle ---------------------------------------------------

    def start(self) -> None:
        if self._threads:
            raise RuntimeError("fleet already started")
        self._stop.clear()
        for index in range(self.num_workers):
            thread = threading.Thread(
                target=self._worker_loop,
                args=(f"{self._name}-{index}",),
                name=f"{self._name}-{index}",
                daemon=True,
            )
            thread.start()
            self._threads.append(thread)

    def drain(self, timeout: float | None = None) -> bool:
        """Stop leasing, let in-flight jobs finish, join the workers.

        Returns True when every worker exited within ``timeout``.
        """
        self._stop.set()
        deadline = (
            time.monotonic() + timeout if timeout is not None else None
        )
        for thread in self._threads:
            remaining = (
                None
                if deadline is None
                else max(0.0, deadline - time.monotonic())
            )
            thread.join(remaining)
        alive = any(t.is_alive() for t in self._threads)
        if not alive:
            self._threads.clear()
        return not alive

    @property
    def alive_workers(self) -> int:
        return sum(1 for t in self._threads if t.is_alive())

    def health(self) -> dict:
        return {
            "configured": self.num_workers,
            "alive": self.alive_workers,
            "draining": self._stop.is_set(),
        }

    # -- execution ---------------------------------------------------

    def _worker_loop(self, worker_id: str) -> None:
        busy_streak = 0
        while not self._stop.is_set():
            try:
                job = self.scheduler.lease(worker_id)
            except StoreBusyError:
                # Contended store: back off (jittered, per-worker) and
                # try again rather than killing the worker thread.
                busy_streak += 1
                pause = min(
                    self.poll_interval * (2 ** min(busy_streak, 6)), 1.0
                ) * (0.5 + _jitter(f"{worker_id}:busy:{busy_streak}"))
                self._stop.wait(pause)
                continue
            busy_streak = 0
            if job is None:
                self._stop.wait(self.poll_interval)
                continue
            self._run_leased(worker_id, job)

    def _heartbeat(
        self, job_id: str, *, done_points: int | None = None
    ) -> bool:
        """Record one heartbeat; a dropped beat is not a job failure.

        Runs through the ``worker.heartbeat`` fault point.  Injected
        drops and transient store contention are swallowed (returning
        ``False``): missing one beat only matters if enough are missed
        for the lease to look abandoned, which is exactly the orphan-
        requeue path the store already handles.
        """
        try:
            fault_point("worker.heartbeat", job_id=job_id)
            self.store.record_heartbeat(job_id, done_points=done_points)
        except (InjectedFaultError, StoreBusyError):
            return False
        return True

    def _run_leased(self, worker_id: str, job: Job) -> None:
        abandoned = threading.Event()

        def progress(done: int, total: int) -> None:
            # Raising here terminates a zombie runner thread at its
            # next point boundary after the lease timed out — its
            # late results must never land on a re-queued job.
            if abandoned.is_set():
                raise JobTimeout(
                    f"job {job.id} abandoned after timeout"
                )
            self._heartbeat(job.id, done_points=done)

        outcome: dict = {}

        def _invoke() -> None:
            runner = self._runner
            try:
                fault_point(
                    "worker.job-execute",
                    job_id=job.id,
                    attempt=job.attempts,
                )
                if runner is None:
                    outcome["result"] = run_sweep_job(
                        job, progress, cache_dir=self.cache_dir
                    )
                else:
                    outcome["result"] = runner(job, progress)
            except BaseException as exc:  # recorded, never swallowed
                outcome["error"] = exc

        thread = threading.Thread(
            target=_invoke, name=f"{worker_id}:{job.id}", daemon=True
        )
        started = time.monotonic()
        thread.start()
        while thread.is_alive():
            thread.join(self.heartbeat_interval)
            if not thread.is_alive():
                break
            self._heartbeat(job.id)
            if (
                self.job_timeout is not None
                and time.monotonic() - started > self.job_timeout
            ):
                abandoned.set()
                self._record_failure(
                    job,
                    JobTimeout(
                        f"job {job.id} exceeded its "
                        f"{self.job_timeout:g}s timeout"
                    ),
                )
                return
        error = outcome.get("error")
        if error is None:
            self._settle(self.store.complete, job.id, outcome["result"])
        else:
            self._record_failure(job, error)

    def _settle(self, operation: Callable, *args) -> None:
        """Run a terminal store transition through busy-retry.

        Losing a ``complete``/``fail`` to transient store contention
        would orphan a finished job until the next restart; a short
        bounded retry loop rides out busy storms instead.
        """
        for attempt in range(8):
            try:
                operation(*args)
                return
            except StoreBusyError:
                if attempt == 7:
                    raise
                time.sleep(
                    min(0.05 * (2**attempt), 0.5)
                    * (0.5 + _jitter(f"settle:{args[0]}:{attempt}"))
                )

    def _record_failure(
        self, job: Job, error: BaseException
    ) -> None:
        """Classify and record a failure.

        Permanent errors (:func:`is_permanent_failure`) fail now;
        transient ones retry with jittered exponential backoff until
        the budget runs out, then settle in ``dead``.
        """
        message = f"{type(error).__name__}: {error}"
        if is_permanent_failure(error):
            self._settle(self.store.fail, job.id, message)
        elif job.attempts < self.max_retries:
            delay = self.backoff_base * (2**job.attempts) * (
                0.5 + _jitter(f"{job.id}:{job.attempts}")
            )
            self._settle(
                lambda job_id, msg: self.store.fail(
                    job_id, msg, retry_at=time.time() + delay
                ),
                job.id,
                message,
            )
        else:
            self._settle(
                lambda job_id, msg: self.store.fail(
                    job_id, msg, dead=True
                ),
                job.id,
                message,
            )
