"""Worker fleet: leased execution of sweep jobs with health accounting.

A :class:`WorkerFleet` runs a pool of daemon threads.  Each worker
loops: lease the best queued job from the scheduler, execute it through
the ordinary batch-first sweep path (:func:`repro.sweep.run_sweep` with
``on_error="skip"``, so per-point failures become structured entries in
the result instead of aborting the job), and record the outcome in the
store.  While a job runs, the worker emits heartbeats — both
periodically and per finished grid point (which doubles as progress
reporting) — so ``GET /healthz`` and job status always reflect live
workers, not wishful thinking.

Failure handling distinguishes *permanent* errors (a
:class:`~repro.errors.ConfigurationError` — the job can never succeed,
fail it now) from *transient* ones (anything else, including the
per-job :class:`~repro.errors.JobTimeout`): transient failures are
retried with exponential backoff until the retry budget is exhausted.
Because finished points live in the shared sweep cache, a retried job
resumes instead of restarting.

Shutdown is a graceful drain: workers finish the job in hand, stop
leasing new ones, and join.  A worker killed mid-job (process death)
leaves a ``running`` row behind; the store re-queues such orphans at
the next service startup.
"""

from __future__ import annotations

import math
import threading
import time
from collections.abc import Callable
from pathlib import Path

from repro.errors import ConfigurationError, JobTimeout
from repro.service.jobs import Job
from repro.service.scheduler import Scheduler
from repro.service.store import JobStore
from repro.sweep import run_sweep

__all__ = ["WorkerFleet", "run_sweep_job"]

#: A job runner: ``(job, progress) -> result document`` where
#: ``progress(done, total)`` reports finished grid points.  Injectable
#: so tests can exercise timeout/retry paths without real sweeps.
JobRunner = Callable[[Job, Callable[[int, int], None]], list]


def _jsonable(value: float) -> float | None:
    """NaN → None so result documents stay strict JSON."""
    return None if math.isnan(value) else float(value)


def run_sweep_job(
    job: Job,
    progress: Callable[[int, int], None],
    *,
    cache_dir: str | Path | None,
) -> list:
    """Execute one job through the batch-first sweep driver.

    Results land in (and resume from) the shared on-disk point cache:
    two jobs measuring overlapping grids share work, and a retried or
    re-submitted job re-serves finished points without re-running them.
    Per-point failures are recorded (``on_error="skip"``), so the
    result document always covers the full grid.
    """
    points = run_sweep(
        job.spec.to_sweep_spec(),
        cache_dir=cache_dir,
        measure=job.spec.measure,
        on_error="skip",
        progress=lambda done, total, _point: progress(done, total),
    )
    return [
        {
            "params": point.params,
            "values": [_jsonable(v) for v in point.values],
            "median": _jsonable(point.median),
            "censored": point.censored,
            "error": point.error,
        }
        for point in points
    ]


class WorkerFleet:
    """A pool of leasing worker threads over one store + scheduler."""

    def __init__(
        self,
        store: JobStore,
        scheduler: Scheduler,
        *,
        cache_dir: str | Path | None = None,
        num_workers: int = 2,
        job_timeout: float | None = None,
        max_retries: int = 2,
        backoff_base: float = 0.25,
        heartbeat_interval: float = 0.5,
        poll_interval: float = 0.05,
        runner: JobRunner | None = None,
        name: str = "worker",
    ) -> None:
        if num_workers < 0:
            raise ConfigurationError(
                f"num_workers must be >= 0, got {num_workers}"
            )
        if max_retries < 0:
            raise ConfigurationError(
                f"max_retries must be >= 0, got {max_retries}"
            )
        self.store = store
        self.scheduler = scheduler
        self.cache_dir = cache_dir
        self.num_workers = num_workers
        self.job_timeout = job_timeout
        self.max_retries = max_retries
        self.backoff_base = backoff_base
        self.heartbeat_interval = heartbeat_interval
        self.poll_interval = poll_interval
        self._runner = runner
        self._name = name
        self._stop = threading.Event()
        self._threads: list[threading.Thread] = []

    # -- lifecycle ---------------------------------------------------

    def start(self) -> None:
        if self._threads:
            raise RuntimeError("fleet already started")
        self._stop.clear()
        for index in range(self.num_workers):
            thread = threading.Thread(
                target=self._worker_loop,
                args=(f"{self._name}-{index}",),
                name=f"{self._name}-{index}",
                daemon=True,
            )
            thread.start()
            self._threads.append(thread)

    def drain(self, timeout: float | None = None) -> bool:
        """Stop leasing, let in-flight jobs finish, join the workers.

        Returns True when every worker exited within ``timeout``.
        """
        self._stop.set()
        deadline = (
            time.monotonic() + timeout if timeout is not None else None
        )
        for thread in self._threads:
            remaining = (
                None
                if deadline is None
                else max(0.0, deadline - time.monotonic())
            )
            thread.join(remaining)
        alive = any(t.is_alive() for t in self._threads)
        if not alive:
            self._threads.clear()
        return not alive

    @property
    def alive_workers(self) -> int:
        return sum(1 for t in self._threads if t.is_alive())

    def health(self) -> dict:
        return {
            "configured": self.num_workers,
            "alive": self.alive_workers,
            "draining": self._stop.is_set(),
        }

    # -- execution ---------------------------------------------------

    def _worker_loop(self, worker_id: str) -> None:
        while not self._stop.is_set():
            job = self.scheduler.lease(worker_id)
            if job is None:
                self._stop.wait(self.poll_interval)
                continue
            self._run_leased(worker_id, job)

    def _run_leased(self, worker_id: str, job: Job) -> None:
        abandoned = threading.Event()

        def progress(done: int, total: int) -> None:
            # Raising here terminates a zombie runner thread at its
            # next point boundary after the lease timed out — its
            # late results must never land on a re-queued job.
            if abandoned.is_set():
                raise JobTimeout(
                    f"job {job.id} abandoned after timeout"
                )
            self.store.record_heartbeat(job.id, done_points=done)

        outcome: dict = {}

        def _invoke() -> None:
            runner = self._runner
            try:
                if runner is None:
                    outcome["result"] = run_sweep_job(
                        job, progress, cache_dir=self.cache_dir
                    )
                else:
                    outcome["result"] = runner(job, progress)
            except BaseException as exc:  # recorded, never swallowed
                outcome["error"] = exc

        thread = threading.Thread(
            target=_invoke, name=f"{worker_id}:{job.id}", daemon=True
        )
        started = time.monotonic()
        thread.start()
        while thread.is_alive():
            thread.join(self.heartbeat_interval)
            if not thread.is_alive():
                break
            self.store.record_heartbeat(job.id)
            if (
                self.job_timeout is not None
                and time.monotonic() - started > self.job_timeout
            ):
                abandoned.set()
                self._record_failure(
                    job,
                    JobTimeout(
                        f"job {job.id} exceeded its "
                        f"{self.job_timeout:g}s timeout"
                    ),
                )
                return
        error = outcome.get("error")
        if error is None:
            self.store.complete(job.id, outcome["result"])
        else:
            self._record_failure(job, error)

    def _record_failure(
        self, job: Job, error: BaseException
    ) -> None:
        """Terminal fail, or retry-with-backoff for transient errors."""
        message = f"{type(error).__name__}: {error}"
        transient = not isinstance(error, ConfigurationError)
        if transient and job.attempts < self.max_retries:
            delay = self.backoff_base * (2**job.attempts)
            self.store.fail(
                job.id, message, retry_at=time.time() + delay
            )
        else:
            self.store.fail(job.id, message)
