"""Simulation engines and run control.

* :class:`PopulationEngine` — exact count-vector chain on the complete
  graph with self-loops (the paper's setting);
* :class:`AgentEngine` — per-vertex chain on arbitrary graphs;
* :class:`AsyncPopulationEngine` — one-vertex-per-tick chain
  ([CMRSS25] model);
* :class:`AsyncBatchPopulationEngine` — R asynchronous chains advanced
  tick-by-tick in lockstep as one vectorised ``(R, k)`` count matrix;
* :class:`BatchPopulationEngine` — R replicas as one vectorised
  ``(R, k)`` count matrix;
* :class:`BatchAgentEngine` — R replicas of a graph chain as one
  vectorised ``(R, n)`` opinion matrix;
* :func:`run_until_consensus` / :func:`replicate` — run control;
* :mod:`repro.engine.registry` — string-keyed engine registry; every
  engine above registers a spec runner plus capability flags, and the
  simulation layer and CLI dispatch through it.
"""

from repro.engine.agent import AgentEngine
from repro.engine.agent_batch import BatchAgentEngine
from repro.engine.async_batch import AsyncBatchPopulationEngine
from repro.engine.asynchronous import AsyncPopulationEngine
from repro.engine.batch import BatchPopulationEngine
from repro.engine.callbacks import (
    FunctionObserver,
    Observer,
    TrajectoryRecorder,
)
from repro.engine.population import PopulationEngine
from repro.engine.registry import (
    Engine,
    EngineInfo,
    available_engines,
    get_engine,
    register_engine,
    unregister_engine,
)
from repro.engine.runner import RunResult, replicate, run_until_consensus
from repro.seeding import (
    RandomState,
    as_generator,
    as_seed_sequence,
    spawn_generators,
)
from repro.state import (
    agents_to_counts,
    alpha_from_counts,
    bias,
    consensus_opinion,
    counts_to_agents,
    gamma_from_counts,
    is_consensus,
    num_alive,
    support,
    validate_agents,
    validate_counts,
)

__all__ = [
    "AgentEngine",
    "AsyncBatchPopulationEngine",
    "AsyncPopulationEngine",
    "BatchAgentEngine",
    "BatchPopulationEngine",
    "Engine",
    "EngineInfo",
    "FunctionObserver",
    "Observer",
    "PopulationEngine",
    "RandomState",
    "RunResult",
    "TrajectoryRecorder",
    "available_engines",
    "get_engine",
    "register_engine",
    "unregister_engine",
    "agents_to_counts",
    "alpha_from_counts",
    "as_generator",
    "as_seed_sequence",
    "bias",
    "consensus_opinion",
    "counts_to_agents",
    "gamma_from_counts",
    "is_consensus",
    "num_alive",
    "replicate",
    "run_until_consensus",
    "spawn_generators",
    "support",
    "validate_agents",
    "validate_counts",
]
