"""Agent-level synchronous engine for arbitrary graphs.

Keeps an explicit opinion per vertex and applies the dynamics'
``agent_step`` each round.  This is the general-graph counterpart of
:class:`~repro.engine.population.PopulationEngine`; on the complete graph
with self-loops the two simulate identical Markov chains (tests verify
distributional agreement), but this engine costs O(n) per round.
"""

from __future__ import annotations

import numpy as np

from repro.core.base import Dynamics
from repro.seeding import RandomState, as_generator
from repro.state import (
    agents_to_counts,
    consensus_opinion,
    gamma_from_counts,
    is_consensus,
    num_alive,
    validate_agents,
)
from repro.errors import ConfigurationError
from repro.graphs.base import Graph

__all__ = ["AgentEngine"]


class AgentEngine:
    """Step a dynamics on an arbitrary graph, one opinion per vertex.

    Parameters
    ----------
    dynamics:
        Any :class:`~repro.core.base.Dynamics`.
    graph:
        The substrate; ``graph.num_vertices`` must equal
        ``len(opinions)``.
    opinions:
        Initial opinion labels, one per vertex, in ``[0, num_opinions)``.
    num_opinions:
        Size of the opinion space ``k`` (labels above the initial maximum
        are allowed so adversaries can inject fresh opinions).
    seed:
        Anything accepted by :func:`repro.seeding.as_generator`.
    """

    def __init__(
        self,
        dynamics: Dynamics,
        graph: Graph,
        opinions: np.ndarray,
        num_opinions: int | None = None,
        seed: RandomState = None,
    ) -> None:
        self.dynamics = dynamics
        self.graph = graph
        self.opinions = validate_agents(opinions, k=num_opinions).copy()
        if self.opinions.size != graph.num_vertices:
            raise ConfigurationError(
                f"got {self.opinions.size} opinions for a graph with "
                f"{graph.num_vertices} vertices"
            )
        self.num_vertices = graph.num_vertices
        self.num_opinions = (
            int(num_opinions)
            if num_opinions is not None
            else int(self.opinions.max()) + 1
        )
        self.rng = as_generator(seed)
        self.round_index = 0

    def step(self) -> np.ndarray:
        """Execute one synchronous round; returns the new agent vector."""
        self.opinions = self.dynamics.agent_step(
            self.opinions, self.graph, self.rng
        )
        self.round_index += 1
        return self.opinions

    def run(self, rounds: int) -> np.ndarray:
        """Execute exactly ``rounds`` rounds (no early stopping)."""
        for _ in range(rounds):
            self.step()
        return self.opinions

    # ------------------------------------------------------------------
    # Inspection helpers (count-vector view)
    # ------------------------------------------------------------------
    @property
    def counts(self) -> np.ndarray:
        """Per-opinion counts derived from the agent vector."""
        return agents_to_counts(self.opinions, self.num_opinions)

    @property
    def alpha(self) -> np.ndarray:
        return self.counts / self.num_vertices

    @property
    def gamma(self) -> float:
        return gamma_from_counts(self.counts)

    @property
    def alive(self) -> int:
        return num_alive(self.counts)

    def is_consensus(self) -> bool:
        return is_consensus(self.counts)

    def winner(self) -> int | None:
        return consensus_opinion(self.counts)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"AgentEngine({self.dynamics.name}, graph={self.graph!r}, "
            f"round={self.round_index})"
        )
