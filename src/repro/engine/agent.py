"""Agent-level synchronous engine for arbitrary graphs.

Keeps an explicit opinion per vertex and applies the dynamics'
``agent_step`` each round.  This is the general-graph counterpart of
:class:`~repro.engine.population.PopulationEngine`; on the complete graph
with self-loops the two simulate identical Markov chains (tests verify
distributional agreement), but this engine costs O(n) per round.
"""

from __future__ import annotations

import numpy as np

from repro.adversary.base import (
    Adversary,
    apply_corruption,
    apply_count_delta,
)
from repro.core.base import Dynamics
from repro.engine.registry import register_engine
from repro.engine.runner import RunResult, replicate, run_spec_replica
from repro.seeding import RandomState, as_generator
from repro.state import (
    agents_to_counts,
    consensus_opinion,
    counts_to_agents,
    gamma_from_counts,
    num_alive,
    validate_agents,
)
from repro.errors import ConfigurationError
from repro.graphs.base import Graph
from repro.graphs.complete import CompleteGraph

__all__ = ["AgentEngine"]


class AgentEngine:
    """Step a dynamics on an arbitrary graph, one opinion per vertex.

    Parameters
    ----------
    dynamics:
        Any :class:`~repro.core.base.Dynamics`.
    graph:
        The substrate; ``graph.num_vertices`` must equal
        ``len(opinions)``.
    opinions:
        Initial opinion labels, one per vertex, in ``[0, num_opinions)``.
    num_opinions:
        Size of the opinion space ``k`` (labels above the initial maximum
        are allowed so adversaries can inject fresh opinions).
    seed:
        Anything accepted by :func:`repro.seeding.as_generator`.
    adversary:
        Optional F-bounded :class:`~repro.adversary.base.Adversary`
        applied after every round.  Adversaries act on count vectors;
        this engine projects the corruption back onto vertices by
        reassigning uniformly random holders of each losing opinion —
        the natural lift of the population-level model (on non-complete
        graphs this is one concrete choice of *which* vertices the
        omniscient adversary flips).
    """

    def __init__(
        self,
        dynamics: Dynamics,
        graph: Graph,
        opinions: np.ndarray,
        num_opinions: int | None = None,
        seed: RandomState = None,
        adversary: Adversary | None = None,
    ) -> None:
        self.dynamics = dynamics
        self.graph = graph
        self.adversary = adversary
        self.opinions = validate_agents(opinions, k=num_opinions).copy()
        if self.opinions.size != graph.num_vertices:
            raise ConfigurationError(
                f"got {self.opinions.size} opinions for a graph with "
                f"{graph.num_vertices} vertices"
            )
        self.num_vertices = graph.num_vertices
        self.num_opinions = (
            int(num_opinions)
            if num_opinions is not None
            else int(self.opinions.max()) + 1
        )
        # Dynamics whose semantics depend on the label layout (e.g. the
        # undecided slot) learn the opinion-space size here — but only
        # when the caller stated it.  Binding the label-maximum fallback
        # would tell e.g. Undecided-State that the top *decided* label
        # is the undecided slot on a fully decided start; leaving such
        # dynamics unbound makes them fail loudly instead.
        if num_opinions is not None:
            self.dynamics.bind_opinion_space(self.num_opinions)
        self.rng = as_generator(seed)
        self.round_index = 0

    def step(self) -> np.ndarray:
        """Execute one synchronous round; returns the new agent vector.

        With an adversary, the round is followed by one checked
        corruption of at most ``F`` vertices.
        """
        self.opinions = self.dynamics.agent_step(
            self.opinions, self.graph, self.rng
        )
        if self.adversary is not None:
            self._apply_corruption()
        self.round_index += 1
        return self.opinions

    def _apply_corruption(self) -> None:
        """Corrupt on the count level, then lift back onto vertices.

        The lift itself — uniformly random holders of each losing
        opinion reassigned to the gainers — is the shared
        :func:`~repro.adversary.base.apply_count_delta`, so this engine
        and the batched graph engine realise corruptions identically.
        """
        counts = agents_to_counts(self.opinions, self.num_opinions)
        corrupted = apply_corruption(counts, self.adversary, self.rng)
        apply_count_delta(self.opinions, corrupted - counts, self.rng)

    def run(self, rounds: int) -> np.ndarray:
        """Execute exactly ``rounds`` rounds (no early stopping)."""
        for _ in range(rounds):
            self.step()
        return self.opinions

    # ------------------------------------------------------------------
    # Inspection helpers (count-vector view)
    # ------------------------------------------------------------------
    @property
    def counts(self) -> np.ndarray:
        """Per-opinion counts derived from the agent vector."""
        return agents_to_counts(self.opinions, self.num_opinions)

    @property
    def alpha(self) -> np.ndarray:
        return self.counts / self.num_vertices

    @property
    def gamma(self) -> float:
        return gamma_from_counts(self.counts)

    @property
    def alive(self) -> int:
        return num_alive(self.counts)

    def is_consensus(self) -> bool:
        return self.dynamics.is_consensus_counts(self.counts)

    def winner(self) -> int | None:
        if not self.is_consensus():
            return None
        return consensus_opinion(self.counts)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        adv = (
            f", adversary={self.adversary!r}"
            if self.adversary is not None
            else ""
        )
        return (
            f"AgentEngine({self.dynamics.name}, graph={self.graph!r}, "
            f"round={self.round_index}{adv})"
        )


def _run_spec(spec) -> list[RunResult]:
    """Registry adapter: R sequential agent-level runs over spawned streams.

    Vertex identities are shuffled per replica, which matters on
    non-complete graphs.
    """
    dynamics = spec.resolved_dynamics()
    counts = spec.initial_counts()
    budget = spec.round_budget()
    adversary = spec.resolved_adversary()
    graph = spec.graph or CompleteGraph(spec.n)

    def factory(rng: np.random.Generator) -> RunResult:
        opinions = counts_to_agents(counts, rng=rng, shuffle=True)
        engine = AgentEngine(
            dynamics,
            graph,
            opinions,
            num_opinions=spec.k,
            seed=rng,
            adversary=adversary,
        )
        return run_spec_replica(engine, spec, budget)

    return replicate(factory, num_runs=spec.replicas, seed=spec.seed)


register_engine(
    "agent",
    _run_spec,
    description="per-vertex chain on an arbitrary graph substrate",
    supports_graph=True,
    supports_target=True,
    supports_observers=True,
    supports_adversary=True,
)
