"""Run control: run-to-consensus, stopping predicates, replication.

The paper's central observable is the *consensus time* ``tau_cons``
(Definition 3.1): the first round at which all vertices support one
opinion.  :func:`run_until_consensus` measures it for any engine exposing
``step() / counts / round_index``; :func:`replicate` repeats a run factory
across independent seed streams and collects the results.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence
from dataclasses import dataclass, field

import numpy as np

from repro.engine.callbacks import Observer
from repro.seeding import RandomState, spawn_generators
from repro.state import consensus_opinion, is_consensus
from repro.errors import ConfigurationError, ConsensusNotReached

__all__ = [
    "RunResult",
    "replicate",
    "run_spec_replica",
    "run_until_consensus",
]


@dataclass
class RunResult:
    """Outcome of a single run.

    Attributes
    ----------
    converged:
        True when consensus (or the caller's ``target`` predicate) was
        reached within the round budget.
    rounds:
        Rounds executed.  Equal to the consensus time when
        ``converged`` and the default predicate were used.
    winner:
        Winning opinion at consensus, else ``None``.
    final_counts:
        Configuration when the run stopped.
    metrics:
        Free-form extras attached by callers (e.g. recorded series).
    """

    converged: bool
    rounds: int
    winner: int | None
    final_counts: np.ndarray
    metrics: dict = field(default_factory=dict)

    @property
    def consensus_time(self) -> int | None:
        """Rounds to consensus, or ``None`` if the run did not converge."""
        return self.rounds if self.converged else None


def run_until_consensus(
    engine,
    max_rounds: int,
    observers: Sequence[Observer] = (),
    target: Callable[[np.ndarray], bool] | None = None,
    on_budget: str = "return",
) -> RunResult:
    """Advance ``engine`` until consensus or a round budget.

    Parameters
    ----------
    engine:
        Any object with ``step()``, ``counts`` and ``round_index`` —
        i.e. :class:`~repro.engine.population.PopulationEngine` or
        :class:`~repro.engine.agent.AgentEngine` (the asynchronous engine
        has its own tick-based loop).
    max_rounds:
        Hard budget on rounds executed by *this call*.
    observers:
        Observers notified with the initial configuration and after every
        round.
    target:
        Optional alternative stopping predicate on the count vector; the
        default stops at consensus.  When provided, ``converged`` in the
        result reflects this predicate instead.
    on_budget:
        ``"return"`` (default) returns a result with
        ``converged=False`` when the budget runs out; ``"raise"`` raises
        :class:`~repro.errors.ConsensusNotReached`.
    """
    if max_rounds < 0:
        raise ConfigurationError(
            f"max_rounds must be non-negative, got {max_rounds}"
        )
    if on_budget not in ("return", "raise"):
        raise ConfigurationError(
            f"on_budget must be 'return' or 'raise', got {on_budget!r}"
        )
    # The consensus convention travels with the dynamics (e.g.
    # Undecided-State only stops on a *decided* winner); engines
    # without a dynamics fall back to the generic check.  It is both
    # the default stopping rule and — like the batch engine — the gate
    # on reporting a winner when a custom target stops the run.
    dynamics = getattr(engine, "dynamics", None)
    at_consensus = (
        dynamics.is_consensus_counts
        if dynamics is not None
        and hasattr(dynamics, "is_consensus_counts")
        else is_consensus
    )
    done = target if target is not None else at_consensus

    def stopped_result() -> RunResult:
        return RunResult(
            converged=True,
            rounds=engine.round_index,
            winner=consensus_opinion(counts)
            if at_consensus(counts)
            else None,
            final_counts=np.asarray(counts).copy(),
        )

    counts = engine.counts
    for obs in observers:
        obs.observe(engine.round_index, counts)
    if done(counts):
        return stopped_result()

    for _ in range(max_rounds):
        engine.step()
        counts = engine.counts
        for obs in observers:
            obs.observe(engine.round_index, counts)
        if done(counts):
            return stopped_result()

    if on_budget == "raise":
        raise ConsensusNotReached(engine.round_index)
    return RunResult(
        converged=False,
        rounds=engine.round_index,
        winner=None,
        final_counts=np.asarray(counts).copy(),
    )


def run_spec_replica(engine, spec, max_rounds: int) -> RunResult:
    """Run one replica engine under a spec's stopping rule.

    Shared by the step-based engines' registry adapters: builds this
    replica's observers from ``spec.observer_factory`` (observers are
    stateful, so each replica needs fresh ones), applies the spec's
    ``target``/``on_budget``, and exposes the observers on the result —
    ``result.metrics["observers"]`` is the caller's only handle on a
    replica's recorded series.
    """
    observers = (
        tuple(spec.observer_factory())
        if spec.observer_factory is not None
        else ()
    )
    result = run_until_consensus(
        engine,
        max_rounds=max_rounds,
        observers=observers,
        target=spec.target,
        on_budget=spec.on_budget,
    )
    if observers:
        result.metrics["observers"] = observers
    return result


def replicate(
    run_factory: Callable[[np.random.Generator], RunResult],
    num_runs: int,
    seed: RandomState = None,
) -> list[RunResult]:
    """Execute ``num_runs`` independent runs with spawned seed streams.

    ``run_factory(rng)`` builds and executes one run end-to-end (typically
    constructing an engine around the given generator and calling
    :func:`run_until_consensus`).  Replica ``i`` always receives child
    stream ``i`` of ``seed``, so results are order-independent and
    reproducible.
    """
    if num_runs < 1:
        raise ConfigurationError(
            f"num_runs must be at least 1, got {num_runs}"
        )
    generators = spawn_generators(seed, num_runs)
    return [run_factory(rng) for rng in generators]
