"""Vectorised batch-replica engine for graph substrates.

:class:`~repro.engine.batch.BatchPopulationEngine` made every
complete-graph workload fast, but the dynamics on *general* graphs —
the whole reason :mod:`repro.graphs` exists — still ran one replica at a
time through :class:`~repro.engine.agent.AgentEngine`.  This engine is
the missing quadrant: it advances R replicas of per-vertex opinions on a
shared :class:`~repro.graphs.base.Graph` as one ``(R, n)`` integer
matrix, stepping every *unfinished* replica with a single call to the
dynamics' ``agent_step_batch``.  The pull-based paper dynamics
(3-Majority, 2-Choices, Voter) are fully vectorised there — one batched
neighbour-sampling pass (:meth:`~repro.graphs.base.Graph.
sample_neighbors_batch`) plus one fused opinion gather per sample plane
— while any other dynamics falls back to a per-row loop (correct, no
speedup).  ``benchmarks/bench_agent_batch.py`` guards the overrides and
tracks the speedups over sequential agent-level replication.

Cost model: the per-round work is proportional to the number of *active*
replica rows — rows are frozen the round they stop (consensus under the
dynamics' own convention, or a caller-supplied per-row ``target`` on the
count vectors), excluded from sampling, and never change again.  The
plain consensus path never materialises count vectors: stopping is
detected on the opinion matrix itself via a cheap column-subsample
prefilter (a necessary condition for row uniformity) followed by the
dynamics' exact ``consensus_mask_agents`` on the few candidate rows.
Count vectors are built only when something needs them — an adversary, a
``target`` predicate, or the final per-replica results.

Adversaries act on count vectors ([GL18] population model); this engine
lifts each row's corruption back onto vertices exactly like the
sequential :class:`~repro.engine.agent.AgentEngine`: uniformly random
holders of each losing opinion are reassigned to the gaining opinions
(:func:`apply_count_delta`), with the corruption contract enforced
row-wise every round.

Each row is the same Markov chain a single :class:`AgentEngine` runs on
the same graph (KS-equivalence-tested); all rows share one generator, so
a batch run is equal to R seeded sequential runs in distribution, not in
realisation.
"""

from __future__ import annotations

import copy
from collections.abc import Callable

import numpy as np

from repro.adversary.base import (
    Adversary,
    apply_count_delta,
    enforce_corruption_contract_batch,
)
from repro.backends import resolve_backend, use_backend
from repro.core.base import Dynamics
from repro.engine.registry import register_engine
from repro.engine.runner import RunResult
from repro.errors import (
    ConfigurationError,
    ConsensusNotReached,
    StateError,
)
from repro.graphs.base import Graph
from repro.graphs.complete import CompleteGraph
from repro.seeding import RandomState, as_generator
from repro.state import counts_to_agents, validate_agents

__all__ = ["BatchAgentEngine", "apply_count_delta"]

#: Column stride of the consensus prefilter: a row is checked in full
#: only when ~n/stride probe columns all agree with column 0.  Any
#: stride is correct (uniformity implies probe uniformity); a prime
#: avoids resonating with structured vertex layouts.
_PREFILTER_STRIDE = 251


def _label_dtype(num_opinions: int) -> np.dtype:
    """Narrowest signed dtype holding labels ``[0, num_opinions)``.

    Narrow labels halve (or quarter) the bandwidth of every gather and
    compare in the hot loop; the engine widens transparently wherever
    numpy needs an index type.
    """
    if num_opinions <= 1 << 7:
        return np.dtype(np.int8)
    if num_opinions <= 1 << 15:
        return np.dtype(np.int16)
    if num_opinions <= 1 << 31:
        return np.dtype(np.int32)
    return np.dtype(np.int64)


class BatchAgentEngine:
    """Advance R replicas of a graph chain as one opinion matrix.

    Parameters
    ----------
    dynamics:
        Any :class:`~repro.core.base.Dynamics`.  3-Majority, 2-Choices
        and Voter step fully vectorised via ``agent_step_batch``;
        dynamics without an override fall back to a per-row loop
        (correct, no speedup).
    graph:
        Shared substrate; ``graph.num_vertices`` must match the opinion
        row length.
    opinions:
        Either a length-``n`` opinion vector shared by every replica, or
        an ``(R, n)`` matrix giving each replica its own start (the
        registry adapter shuffles vertex identities per row, which
        matters on non-complete graphs).
    num_replicas:
        Number of replicas R.  Required with a 1-D ``opinions``; with a
        matrix it must match the row count (or be omitted).
    num_opinions:
        Size of the opinion space ``k``.  Announced to the dynamics via
        ``bind_opinion_space`` when given (the Undecided-State label
        convention needs it), defaulted from the labels otherwise.
    seed:
        Anything accepted by :func:`repro.seeding.as_generator`; one
        stream drives all replicas.
    adversary:
        Optional F-bounded :class:`~repro.adversary.base.Adversary`
        corrupting every active row after each round via
        ``corrupt_batch`` (contract-checked per row), lifted onto
        vertices with :func:`apply_count_delta`.
    target:
        Optional stopping predicate on a single row's *count vector*
        (the population-level contract shared with
        :class:`~repro.engine.batch.BatchPopulationEngine`); objects
        exposing ``batch(rows)`` are evaluated in one vectorised call.
    element_budget:
        Optional override of the dynamics' ``batch_element_budget``
        (the scratch ceiling that chunks replica rows inside
        ``agent_step_batch``); applied to an engine-local copy of the
        dynamics, like the population batch engine's knob.
    backend:
        Optional compute backend pinned for this engine's steps (name,
        instance, or ``None``/``"auto"`` to inherit the ambient backend
        — see :mod:`repro.backends`); a pure performance knob that
        never changes the sampled law.
    record_hook:
        Optional observation callback ``hook(round_index, counts,
        frozen)`` invoked after every :meth:`step` with the engine's
        per-replica *count* view (derived from the opinion matrix —
        the population-level contract all recorders share) and frozen
        mask.  Costs nothing when ``None``; used by
        :mod:`repro.invariants` to record traces.

    Attributes
    ----------
    opinions:
        The ``(R, n)`` opinion matrix (owned by the engine; narrow
        integer dtype).
    frozen, consensus_rounds, round_index:
        Same meaning as on :class:`BatchPopulationEngine`.
    """

    def __init__(
        self,
        dynamics: Dynamics,
        graph: Graph,
        opinions: np.ndarray,
        num_replicas: int | None = None,
        num_opinions: int | None = None,
        seed: RandomState = None,
        adversary: Adversary | None = None,
        target: Callable[[np.ndarray], bool] | None = None,
        element_budget: int | None = None,
        backend: str | None = None,
        record_hook: Callable[[int, np.ndarray, np.ndarray], None]
        | None = None,
    ) -> None:
        self.backend = (
            None if backend in (None, "auto") else resolve_backend(backend)
        )
        self.record_hook = record_hook
        if element_budget is not None:
            if element_budget < 1:
                raise ConfigurationError(
                    "element_budget must be positive, got "
                    f"{element_budget}"
                )
            dynamics = copy.copy(dynamics)
            dynamics.batch_element_budget = int(element_budget)
        self.dynamics = dynamics
        self.graph = graph
        self.adversary = adversary
        self.target = target
        arr = np.asarray(opinions)
        if arr.ndim == 1:
            if num_replicas is None:
                raise ConfigurationError(
                    "num_replicas is required when opinions is a single "
                    "1-D configuration"
                )
            if num_replicas < 1:
                raise ConfigurationError(
                    f"num_replicas must be at least 1, got {num_replicas}"
                )
            base = validate_agents(arr, k=num_opinions)
            matrix = np.tile(base, (int(num_replicas), 1))
        elif arr.ndim == 2:
            if num_replicas is not None and num_replicas != arr.shape[0]:
                raise ConfigurationError(
                    f"opinions has {arr.shape[0]} rows but num_replicas="
                    f"{num_replicas}"
                )
            matrix = np.stack(
                [validate_agents(row, k=num_opinions) for row in arr]
            )
        else:
            raise ConfigurationError(
                f"opinions must be 1-D or (R, n), got shape {arr.shape}"
            )
        if matrix.shape[1] != graph.num_vertices:
            raise ConfigurationError(
                f"got {matrix.shape[1]} opinions per replica for a graph "
                f"with {graph.num_vertices} vertices"
            )
        self.num_replicas = int(matrix.shape[0])
        self.num_vertices = int(matrix.shape[1])
        self.num_opinions = (
            int(num_opinions)
            if num_opinions is not None
            else int(matrix.max()) + 1
        )
        # Same contract as AgentEngine: only a caller-stated opinion
        # space is bound (a label-maximum fallback would mislead e.g.
        # Undecided-State on fully decided starts).
        if num_opinions is not None:
            self.dynamics.bind_opinion_space(self.num_opinions)
        self.opinions = np.ascontiguousarray(
            matrix, dtype=_label_dtype(self.num_opinions)
        )
        self.rng = as_generator(seed)
        self.round_index = 0
        self.frozen = self._stopped(self.opinions)
        self.consensus_rounds = np.where(self.frozen, 0, -1).astype(
            np.int64
        )

    # ------------------------------------------------------------------
    # Count-vector views (built on demand; never in the plain hot loop)
    # ------------------------------------------------------------------
    def _counts_of(self, opinions: np.ndarray) -> np.ndarray:
        """Per-row opinion counts of an ``(rows, n)`` matrix, int64.

        Labels are bounds-checked first: the offset bincount would
        otherwise silently file an out-of-range label under the *next*
        row's bins.  A dynamics minting labels beyond the engine's
        opinion space (e.g. Undecided-State run with an inferred
        ``num_opinions``) fails loudly here, like the sequential
        engine's per-round validation does.
        """
        rows = opinions.shape[0]
        k = self.num_opinions
        top = int(opinions.max()) if opinions.size else 0
        if top >= k:
            raise StateError(
                f"opinion label {top} is outside the engine's opinion "
                f"space of size {k}; construct the engine with the full "
                "num_opinions (auxiliary labels included)"
            )
        offsets = (np.arange(rows, dtype=np.int64) * k)[:, None]
        flat = opinions.astype(np.int64, copy=False) + offsets
        return np.bincount(
            flat.reshape(-1), minlength=rows * k
        ).reshape(rows, k)

    @property
    def counts(self) -> np.ndarray:
        """Per-replica count matrix ``(R, k)`` derived from opinions."""
        return self._counts_of(self.opinions)

    def _stopped(self, opinions: np.ndarray) -> np.ndarray:
        """Per-row stopping mask on an opinion matrix.

        Without a ``target``: the dynamics' agent-level consensus rule,
        gated by the column-subsample prefilter so the full row scan
        only runs on rows that could plausibly be uniform.  With a
        ``target``: the predicate is evaluated on the rows' count
        vectors (vectorised when it exposes ``batch``).
        """
        rows = opinions.shape[0]
        if self.target is not None:
            counts = self._counts_of(opinions)
            batch_predicate = getattr(self.target, "batch", None)
            if batch_predicate is not None:
                return np.asarray(batch_predicate(counts), dtype=bool)
            return np.fromiter(
                (bool(self.target(row)) for row in counts),
                dtype=bool,
                count=rows,
            )
        mask = np.zeros(rows, dtype=bool)
        probe = opinions[:, ::_PREFILTER_STRIDE] == opinions[:, :1]
        candidates = np.flatnonzero(probe.all(axis=1))
        if candidates.size:
            mask[candidates] = np.asarray(
                self.dynamics.consensus_mask_agents(opinions[candidates]),
                dtype=bool,
            )
        return mask

    # ------------------------------------------------------------------
    # Stepping
    # ------------------------------------------------------------------
    def step(self) -> np.ndarray:
        """Advance every unfinished replica one synchronous round.

        Frozen rows are excluded from sampling (and corruption) and
        keep their opinions; rows that hit the stopping rule this round
        — checked after the adversary's corruption, matching the
        sequential adversarial chain — record it and freeze.
        """
        active = np.flatnonzero(~self.frozen)
        self.round_index += 1
        if active.size == 0:
            if self.record_hook is not None:
                self.record_hook(
                    self.round_index, self.counts, self.frozen
                )
            return self.opinions
        all_active = active.size == self.num_replicas
        view = self.opinions if all_active else self.opinions[active]
        with use_backend(self.backend):
            new_rows = self.dynamics.agent_step_batch(
                view, self.graph, self.rng
            )
        if self.adversary is not None:
            self._apply_corruption(new_rows)
        if all_active:
            # Keep the engine's narrow label dtype even when a row-loop
            # fallback dynamics returns widened rows.
            self.opinions = np.ascontiguousarray(
                new_rows, dtype=self.opinions.dtype
            )
        else:
            self.opinions[active] = new_rows
        done = active[self._stopped(new_rows)]
        self.consensus_rounds[done] = self.round_index
        self.frozen[done] = True
        if self.record_hook is not None:
            self.record_hook(self.round_index, self.counts, self.frozen)
        return self.opinions

    def _apply_corruption(self, new_rows: np.ndarray) -> None:
        """Corrupt all active rows on the count level, lift onto vertices.

        The corruption itself is one vectorised ``corrupt_batch`` call
        (contract-checked row-wise); the lift loops only over rows the
        adversary actually touched, moving at most F vertices each.
        """
        counts = self._counts_of(new_rows)
        corrupted = self.adversary.corrupt_batch(counts.copy(), self.rng)
        corrupted = enforce_corruption_contract_batch(
            counts, corrupted, self.adversary.budget
        )
        delta = corrupted - counts
        for row in np.flatnonzero(delta.any(axis=1)):
            apply_count_delta(new_rows[row], delta[row], self.rng)

    def all_consensus(self) -> bool:
        """True once every replica has stopped."""
        return bool(self.frozen.all())

    def run_until_consensus(self, max_rounds: int) -> list[RunResult]:
        """Run until every replica froze or ``max_rounds`` rounds passed."""
        if max_rounds < 0:
            raise ConfigurationError(
                f"max_rounds must be non-negative, got {max_rounds}"
            )
        while not self.frozen.all() and self.round_index < max_rounds:
            self.step()
        return self.results()

    def results(self) -> list[RunResult]:
        """Per-replica results for the rounds executed so far.

        Winner reporting follows the dynamics' count-level consensus
        convention (``consensus_mask_batch``), exactly like the
        population batch engine — an Undecided-State row only reports a
        winner when a decided opinion holds everything.
        """
        counts = self.counts
        winners = counts.argmax(axis=1)
        at_consensus = np.asarray(
            self.dynamics.consensus_mask_batch(counts), dtype=bool
        )
        out: list[RunResult] = []
        for r in range(self.num_replicas):
            converged = bool(self.frozen[r])
            out.append(
                RunResult(
                    converged=converged,
                    rounds=int(self.consensus_rounds[r])
                    if converged
                    else self.round_index,
                    winner=int(winners[r])
                    if converged and at_consensus[r]
                    else None,
                    final_counts=counts[r].copy(),
                )
            )
        return out

    # ------------------------------------------------------------------
    # Inspection helpers (matrix-level views)
    # ------------------------------------------------------------------
    @property
    def alpha(self) -> np.ndarray:
        """Fractional populations, shape ``(R, k)``."""
        return self.counts / self.num_vertices

    @property
    def gamma(self) -> np.ndarray:
        """Per-replica ``gamma_t``, shape ``(R,)``."""
        a = self.alpha
        return np.einsum("rk,rk->r", a, a)

    @property
    def alive(self) -> np.ndarray:
        """Per-replica surviving-opinion counts, shape ``(R,)``."""
        return np.count_nonzero(self.counts, axis=1)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        adv = (
            f", adversary={self.adversary!r}"
            if self.adversary is not None
            else ""
        )
        return (
            f"BatchAgentEngine({self.dynamics.name}, "
            f"graph={self.graph!r}, R={self.num_replicas}, "
            f"round={self.round_index}, "
            f"frozen={int(self.frozen.sum())}{adv})"
        )


def _run_spec(spec) -> list[RunResult]:
    """Registry adapter: all R graph replicas in one vectorised engine.

    Vertex identities are shuffled independently per replica row
    (``rng.permuted``), mirroring the sequential agent adapter — on
    non-complete graphs *which* vertices hold which opinion matters.
    Honors ``spec.on_budget`` like every other engine adapter.
    """
    dynamics = spec.resolved_dynamics()
    counts = spec.initial_counts()
    graph = spec.graph or CompleteGraph(spec.n)
    rng = as_generator(spec.seed)
    base = counts_to_agents(counts)
    opinions = rng.permuted(
        np.tile(base, (spec.replicas, 1)), axis=1
    )
    engine = BatchAgentEngine(
        dynamics,
        graph,
        opinions,
        num_opinions=spec.k,
        seed=rng,
        adversary=spec.resolved_adversary(),
        target=spec.target,
        backend=getattr(spec, "backend", None),
    )
    budget = spec.round_budget()
    results = engine.run_until_consensus(budget)
    if spec.on_budget == "raise":
        censored = sum(1 for result in results if not result.converged)
        if censored:
            raise ConsensusNotReached(
                budget,
                f"{censored} of {spec.replicas} replicas did not reach "
                f"consensus within {budget} rounds",
            )
    return results


register_engine(
    "agent-batch",
    _run_spec,
    description=(
        "R replicas of a graph chain as one (R, n) opinion matrix"
    ),
    supports_graph=True,
    supports_target=True,
    supports_observers=False,
    supports_adversary=True,
)
