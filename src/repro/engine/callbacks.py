"""Observers that record per-round metrics during a run.

An observer is any object with an ``observe(round_index, counts)`` method;
the engines call it after every round (and once for the initial
configuration with ``round_index = 0``).  :class:`TrajectoryRecorder`
covers the quantities the paper tracks (gamma_t, bias, surviving
opinions); ad-hoc observers can be built from a plain function with
:class:`FunctionObserver`.
"""

from __future__ import annotations

from collections.abc import Callable

import numpy as np

from repro.state import gamma_from_counts, num_alive

__all__ = [
    "FunctionObserver",
    "Observer",
    "TrajectoryRecorder",
]


class Observer:
    """Base observer; subclasses override :meth:`observe`."""

    def observe(self, round_index: int, counts: np.ndarray) -> None:
        """Called once per round with the post-round configuration."""


class FunctionObserver(Observer):
    """Adapt a plain callable ``f(round_index, counts)`` into an observer."""

    def __init__(self, func: Callable[[int, np.ndarray], None]) -> None:
        self.func = func

    def observe(self, round_index: int, counts: np.ndarray) -> None:
        self.func(round_index, counts)


class TrajectoryRecorder(Observer):
    """Record the paper's basic quantities along a run.

    Parameters
    ----------
    record_gamma:
        Record ``gamma_t = sum_i alpha_t(i)^2`` (Definition 3.2(iii)).
    record_alive:
        Record the number of surviving opinions per round.
    record_max_alpha:
        Record ``max_i alpha_t(i)``.
    bias_pair:
        Optional ``(i, j)``; records ``delta_t(i, j)`` (Def. 3.2(ii)).
    counts_stride:
        When positive, snapshot the full count vector every
        ``counts_stride`` rounds (round 0 included).

    After a run, :meth:`as_arrays` returns a dict of numpy arrays keyed by
    ``"round"``, ``"gamma"``, ``"alive"``, ``"max_alpha"``, ``"bias"``.
    Snapshots are in :attr:`snapshots` as ``(round, counts)`` pairs.
    """

    def __init__(
        self,
        record_gamma: bool = True,
        record_alive: bool = True,
        record_max_alpha: bool = False,
        bias_pair: tuple[int, int] | None = None,
        counts_stride: int = 0,
    ) -> None:
        self.record_gamma = record_gamma
        self.record_alive = record_alive
        self.record_max_alpha = record_max_alpha
        self.bias_pair = bias_pair
        self.counts_stride = int(counts_stride)
        self.rounds: list[int] = []
        self.gamma: list[float] = []
        self.alive: list[int] = []
        self.max_alpha: list[float] = []
        self.bias: list[float] = []
        self.snapshots: list[tuple[int, np.ndarray]] = []

    def observe(self, round_index: int, counts: np.ndarray) -> None:
        self.rounds.append(round_index)
        n = counts.sum()
        if self.record_gamma:
            self.gamma.append(gamma_from_counts(counts))
        if self.record_alive:
            self.alive.append(num_alive(counts))
        if self.record_max_alpha:
            self.max_alpha.append(float(counts.max() / n))
        if self.bias_pair is not None:
            i, j = self.bias_pair
            self.bias.append(float((counts[i] - counts[j]) / n))
        if self.counts_stride and round_index % self.counts_stride == 0:
            self.snapshots.append((round_index, counts.copy()))

    def as_arrays(self) -> dict[str, np.ndarray]:
        """Recorded series as a dict of aligned numpy arrays."""
        out: dict[str, np.ndarray] = {
            "round": np.asarray(self.rounds, dtype=np.int64)
        }
        if self.record_gamma:
            out["gamma"] = np.asarray(self.gamma, dtype=np.float64)
        if self.record_alive:
            out["alive"] = np.asarray(self.alive, dtype=np.int64)
        if self.record_max_alpha:
            out["max_alpha"] = np.asarray(self.max_alpha, dtype=np.float64)
        if self.bias_pair is not None:
            out["bias"] = np.asarray(self.bias, dtype=np.float64)
        return out
