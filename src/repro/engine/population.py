"""Exact population-level (count-vector) engine.

On the complete graph with self-loops the vertices are exchangeable and,
conditioned on the previous round, update independently — so the count
vector is a sufficient statistic and the dynamics' ``population_step``
samples the next configuration *exactly* (see paper eqs. (5), (6)).  This
engine therefore simulates the same Markov chain as the agent-level engine
on :class:`~repro.graphs.complete.CompleteGraph`, at cost independent of
``n`` for 3-Majority and O(min(a^2, n)) for 2-Choices.

Use :class:`~repro.engine.agent.AgentEngine` for any other graph.
"""

from __future__ import annotations

import numpy as np

from repro.adversary.base import Adversary, apply_corruption
from repro.core.base import Dynamics
from repro.engine.registry import register_engine
from repro.engine.runner import RunResult, replicate, run_spec_replica
from repro.seeding import RandomState, as_generator
from repro.state import (
    consensus_opinion,
    gamma_from_counts,
    num_alive,
    validate_counts,
)

__all__ = ["PopulationEngine"]


class PopulationEngine:
    """Step a dynamics on the complete graph with self-loops, exactly.

    Parameters
    ----------
    dynamics:
        Any :class:`~repro.core.base.Dynamics`.
    counts:
        Initial configuration as a per-opinion count vector.
    seed:
        Anything accepted by :func:`repro.seeding.as_generator`.
    adversary:
        Optional F-bounded :class:`~repro.adversary.base.Adversary`
        applied after every dynamics round ([GL18] model); the
        corruption contract is enforced each round.

    Attributes
    ----------
    counts:
        Current configuration (int64 array, owned by the engine).
    round_index:
        Number of synchronous rounds executed so far.
    """

    def __init__(
        self,
        dynamics: Dynamics,
        counts: np.ndarray,
        seed: RandomState = None,
        adversary: Adversary | None = None,
    ) -> None:
        self.dynamics = dynamics
        self.adversary = adversary
        self.counts = validate_counts(counts).copy()
        self.num_vertices = int(self.counts.sum())
        self.num_opinions = int(self.counts.size)
        self.rng = as_generator(seed)
        self.round_index = 0

    def step(self) -> np.ndarray:
        """Execute one synchronous round; returns the new count vector.

        With an adversary, a round is: one dynamics round, then one
        checked corruption of at most ``F`` vertices.
        """
        counts = self.dynamics.population_step(self.counts, self.rng)
        if self.adversary is not None:
            counts = apply_corruption(counts, self.adversary, self.rng)
        self.counts = counts
        self.round_index += 1
        return self.counts

    def run(self, rounds: int) -> np.ndarray:
        """Execute exactly ``rounds`` rounds (no early stopping)."""
        for _ in range(rounds):
            self.step()
        return self.counts

    # ------------------------------------------------------------------
    # Inspection helpers
    # ------------------------------------------------------------------
    @property
    def alpha(self) -> np.ndarray:
        """Current fractional populations."""
        return self.counts / self.num_vertices

    @property
    def gamma(self) -> float:
        """Current squared l2-norm ``gamma_t`` (Definition 3.2(iii))."""
        return gamma_from_counts(self.counts)

    @property
    def alive(self) -> int:
        """Number of surviving opinions."""
        return num_alive(self.counts)

    def is_consensus(self) -> bool:
        """True at consensus under the dynamics' label convention."""
        return self.dynamics.is_consensus_counts(self.counts)

    def winner(self) -> int | None:
        """Winning opinion at consensus, else ``None``.

        Consensus is the dynamics' convention, so e.g. the undecided
        label of an all-undecided USD state is never reported.
        """
        if not self.is_consensus():
            return None
        return consensus_opinion(self.counts)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        adv = (
            f", adversary={self.adversary!r}"
            if self.adversary is not None
            else ""
        )
        return (
            f"PopulationEngine({self.dynamics.name}, n={self.num_vertices}, "
            f"k={self.num_opinions}, round={self.round_index}{adv})"
        )


def _run_spec(spec) -> list[RunResult]:
    """Registry adapter: R sequential population runs over spawned streams.

    Replica ``i`` always receives child stream ``i`` of the spec seed,
    so results are order-independent and bitwise-reproducible.
    """
    dynamics = spec.resolved_dynamics()
    counts = spec.initial_counts()
    budget = spec.round_budget()
    adversary = spec.resolved_adversary()

    def factory(rng: np.random.Generator) -> RunResult:
        engine = PopulationEngine(
            dynamics, counts, seed=rng, adversary=adversary
        )
        return run_spec_replica(engine, spec, budget)

    return replicate(factory, num_runs=spec.replicas, seed=spec.seed)


register_engine(
    "population",
    _run_spec,
    description=(
        "exact count-vector chain on the complete graph with self-loops"
    ),
    supports_target=True,
    supports_observers=True,
    supports_adversary=True,
)
