"""Asynchronous population engine ([CMRSS25] model, paper Section 1.1).

In the asynchronous model a single uniformly random vertex updates its
opinion per tick; ``n`` ticks correspond to one synchronous round.  The
paper cites [CMRSS25]'s ``~O(min(kn, n^{3/2}))`` bound for asynchronous
3-Majority and notes that dividing by ``n`` suggests — but does not prove
— the synchronous ``~O(min(k, sqrt(n)))`` bound that this paper
establishes.  The ``async`` experiment measures both chains side by side.

The engine works on count vectors (complete graph with self-loops) and
delegates single-tick sampling to the dynamics'
``async_population_step``.  Ticks are inherently sequential (the law
changes after every tick), so this is a Python-level loop; experiment
presets keep ``n`` moderate.
"""

from __future__ import annotations

import math

import numpy as np

from repro.adversary.base import Adversary, apply_corruption
from repro.core.base import Dynamics
from repro.engine.registry import register_engine
from repro.engine.runner import RunResult, replicate
from repro.errors import ConsensusNotReached
from repro.seeding import RandomState, as_generator
from repro.state import (
    consensus_opinion,
    gamma_from_counts,
    num_alive,
    validate_counts,
)

__all__ = ["AsyncPopulationEngine"]


class AsyncPopulationEngine:
    """One-random-vertex-per-tick chain on the complete graph.

    Attributes mirror :class:`~repro.engine.population.PopulationEngine`
    with ``tick_index`` counting individual vertex updates;
    ``round_index`` reports the synchronous-equivalent round
    ``tick_index // n``.

    An optional :class:`~repro.adversary.base.Adversary` corrupts the
    configuration once per synchronous-equivalent round, i.e. after
    every ``n`` ticks — the natural translation of the [GL18] "F per
    round" budget into the asynchronous model.
    """

    def __init__(
        self,
        dynamics: Dynamics,
        counts: np.ndarray,
        seed: RandomState = None,
        adversary: Adversary | None = None,
    ) -> None:
        self.dynamics = dynamics
        self.adversary = adversary
        self.counts = validate_counts(counts).copy()
        self.num_vertices = int(self.counts.sum())
        self.num_opinions = int(self.counts.size)
        self.rng = as_generator(seed)
        self.tick_index = 0

    def step(self) -> np.ndarray:
        """Execute one asynchronous tick (one vertex update).

        With an adversary, every ``n``-th tick closes a
        synchronous-equivalent round and triggers one checked
        corruption.
        """
        self.counts = self.dynamics.async_population_step(
            self.counts, self.rng
        )
        self.tick_index += 1
        if (
            self.adversary is not None
            and self.tick_index % self.num_vertices == 0
        ):
            self.counts = apply_corruption(
                self.counts, self.adversary, self.rng
            )
        return self.counts

    def run_ticks(self, ticks: int) -> np.ndarray:
        """Execute exactly ``ticks`` ticks (no early stopping)."""
        for _ in range(ticks):
            self.step()
        return self.counts

    def run_until_consensus(self, max_ticks: int) -> int | None:
        """Run until consensus; returns the consensus tick or ``None``.

        The cheap one-opinion-holds-all test is the per-tick hot-path
        filter; ticks that pass it confirm against the dynamics' own
        convention (:meth:`~repro.core.base.Dynamics.is_consensus_counts`
        — for Undecided-State, only a *decided* winner stops the run).
        """
        if self.is_consensus():
            return self.tick_index
        while self.tick_index < max_ticks:
            self.step()
            if (
                self.counts.max() == self.num_vertices
                and self.dynamics.is_consensus_counts(self.counts)
            ):
                return self.tick_index
        return None

    # ------------------------------------------------------------------
    # Inspection helpers
    # ------------------------------------------------------------------
    @property
    def round_index(self) -> float:
        """Synchronous-equivalent rounds elapsed (= ticks / n)."""
        return self.tick_index / self.num_vertices

    @property
    def alpha(self) -> np.ndarray:
        return self.counts / self.num_vertices

    @property
    def gamma(self) -> float:
        return gamma_from_counts(self.counts)

    @property
    def alive(self) -> int:
        return num_alive(self.counts)

    def is_consensus(self) -> bool:
        return self.dynamics.is_consensus_counts(self.counts)

    def winner(self) -> int | None:
        if not self.is_consensus():
            return None
        return consensus_opinion(self.counts)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        adv = (
            f", adversary={self.adversary!r}"
            if self.adversary is not None
            else ""
        )
        return (
            f"AsyncPopulationEngine({self.dynamics.name}, "
            f"n={self.num_vertices}, tick={self.tick_index}{adv})"
        )


def _run_spec(spec) -> list[RunResult]:
    """Registry adapter: R sequential asynchronous runs.

    The spec's round budget is interpreted as ``max_rounds * n`` ticks;
    the reported ``rounds`` is the synchronous-equivalent
    ``ceil(ticks / n)`` with the raw tick count in
    ``metrics["ticks"]``.
    """
    dynamics = spec.resolved_dynamics()
    counts = spec.initial_counts()
    budget = spec.round_budget()
    adversary = spec.resolved_adversary()

    def factory(rng: np.random.Generator) -> RunResult:
        engine = AsyncPopulationEngine(
            dynamics, counts, seed=rng, adversary=adversary
        )
        max_ticks = budget * spec.n
        tick = engine.run_until_consensus(max_ticks)
        converged = tick is not None
        if not converged and spec.on_budget == "raise":
            # Abort replication at the first censored replica instead
            # of paying for the remaining full-budget runs.
            raise ConsensusNotReached(
                budget,
                f"no consensus within {max_ticks} ticks "
                f"({budget} synchronous-equivalent rounds)",
            )
        ticks = tick if converged else engine.tick_index
        return RunResult(
            converged=converged,
            rounds=int(math.ceil(ticks / spec.n)),
            winner=engine.winner() if converged else None,
            final_counts=engine.counts.copy(),
            metrics={"ticks": int(ticks)},
        )

    return replicate(factory, num_runs=spec.replicas, seed=spec.seed)


register_engine(
    "async",
    _run_spec,
    description="one-vertex-per-tick chain ([CMRSS25] model)",
    supports_target=False,
    supports_observers=False,
    supports_adversary=True,
)
