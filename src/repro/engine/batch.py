"""Vectorised batch-replica engine: R population chains in lockstep.

:func:`~repro.engine.runner.replicate` advances R independent runs as a
Python loop over single :class:`~repro.engine.population.PopulationEngine`
instances — R round-loops, each paying the per-call numpy overhead on tiny
arrays.  This engine instead holds all R replicas as one ``(R, k)`` int64
count matrix and advances every *unfinished* replica with a single call to
the dynamics' ``population_step_batch`` (one batched multinomial for
3-Majority and Voter, a binomial + multinomial pair for 2-Choices), so a
``replicate``-style workload has one vectorised hot loop instead of R
sequential ones.

Each row is the same Markov chain a single :class:`PopulationEngine` runs
(the tests check distributional agreement via KS tests), but all rows
share one generator, so a batch run is *not* bitwise-identical to R
seeded sequential runs — equal in distribution, not in realisation.

Rows are frozen the round they reach consensus: they are excluded from
subsequent sampling, their count vectors never change again, and their
consensus round is recorded.  The engine keeps running until every row is
frozen or the round budget is spent.
"""

from __future__ import annotations

import numpy as np

from repro.core.base import Dynamics
from repro.engine.runner import RunResult
from repro.errors import ConfigurationError
from repro.seeding import RandomState, as_generator
from repro.state import validate_counts

__all__ = ["BatchPopulationEngine"]


class BatchPopulationEngine:
    """Advance R replicas of a population chain as one count matrix.

    Parameters
    ----------
    dynamics:
        Any :class:`~repro.core.base.Dynamics`.  3-Majority, 2-Choices
        and Voter run fully vectorised; other dynamics fall back to a
        row loop inside ``population_step_batch`` (correct, no speedup).
    counts:
        Either a 1-D count vector shared by every replica, or an
        ``(R, k)`` matrix giving each replica its own start.  Every row
        must have the same total mass ``n``.
    num_replicas:
        Number of replicas R.  Required with a 1-D ``counts``; with a
        matrix it must match the row count (or be omitted).
    seed:
        Anything accepted by :func:`repro.seeding.as_generator`.  One
        stream drives all replicas.

    Attributes
    ----------
    counts:
        The ``(R, k)`` configuration matrix (owned by the engine).
    round_index:
        Synchronous rounds executed so far (shared by all replicas).
    frozen:
        Boolean ``(R,)`` mask of replicas that reached consensus.
    consensus_rounds:
        Int ``(R,)`` array of per-replica consensus times (-1 while
        unfinished).
    """

    def __init__(
        self,
        dynamics: Dynamics,
        counts: np.ndarray,
        num_replicas: int | None = None,
        seed: RandomState = None,
    ) -> None:
        self.dynamics = dynamics
        arr = np.asarray(counts)
        if arr.ndim == 1:
            if num_replicas is None:
                raise ConfigurationError(
                    "num_replicas is required when counts is a single "
                    "1-D configuration"
                )
            if num_replicas < 1:
                raise ConfigurationError(
                    f"num_replicas must be at least 1, got {num_replicas}"
                )
            base = validate_counts(arr)
            self.counts = np.tile(base, (int(num_replicas), 1))
        elif arr.ndim == 2:
            rows = [validate_counts(row) for row in arr]
            if num_replicas is not None and num_replicas != len(rows):
                raise ConfigurationError(
                    f"counts has {len(rows)} rows but num_replicas="
                    f"{num_replicas}"
                )
            self.counts = np.stack(rows)
            totals = self.counts.sum(axis=1)
            if (totals != totals[0]).any():
                raise ConfigurationError(
                    "every replica row must have the same total mass; "
                    f"got row sums {np.unique(totals).tolist()}"
                )
        else:
            raise ConfigurationError(
                f"counts must be 1-D or (R, k), got shape {arr.shape}"
            )
        self.num_replicas = int(self.counts.shape[0])
        self.num_opinions = int(self.counts.shape[1])
        self.num_vertices = int(self.counts[0].sum())
        self.rng = as_generator(seed)
        self.round_index = 0
        self.frozen = (
            self.counts.max(axis=1) == self.num_vertices
        )
        self.consensus_rounds = np.where(self.frozen, 0, -1).astype(
            np.int64
        )

    def step(self) -> np.ndarray:
        """Advance every unfinished replica one round.

        Frozen rows are excluded from sampling and keep their counts;
        rows that hit consensus this round record it and freeze.
        """
        active = ~self.frozen
        self.round_index += 1
        if active.any():
            self.counts[active] = self.dynamics.population_step_batch(
                self.counts[active], self.rng
            )
            done = active & (self.counts.max(axis=1) == self.num_vertices)
            self.consensus_rounds[done] = self.round_index
            self.frozen |= done
        return self.counts

    def all_consensus(self) -> bool:
        """True once every replica has reached consensus."""
        return bool(self.frozen.all())

    def run_until_consensus(self, max_rounds: int) -> list[RunResult]:
        """Run until every replica froze or ``max_rounds`` rounds passed.

        Returns one :class:`~repro.engine.runner.RunResult` per replica,
        in row order: converged replicas report their consensus time and
        winner; censored ones report the budget with ``winner=None``.
        """
        if max_rounds < 0:
            raise ConfigurationError(
                f"max_rounds must be non-negative, got {max_rounds}"
            )
        while not self.frozen.all() and self.round_index < max_rounds:
            self.step()
        return self.results()

    def results(self) -> list[RunResult]:
        """Per-replica results for the rounds executed so far."""
        winners = self.counts.argmax(axis=1)
        out: list[RunResult] = []
        for r in range(self.num_replicas):
            converged = bool(self.frozen[r])
            out.append(
                RunResult(
                    converged=converged,
                    rounds=int(self.consensus_rounds[r])
                    if converged
                    else self.round_index,
                    winner=int(winners[r]) if converged else None,
                    final_counts=self.counts[r].copy(),
                )
            )
        return out

    # ------------------------------------------------------------------
    # Inspection helpers (matrix-level views)
    # ------------------------------------------------------------------
    @property
    def alpha(self) -> np.ndarray:
        """Fractional populations, shape ``(R, k)``."""
        return self.counts / self.num_vertices

    @property
    def gamma(self) -> np.ndarray:
        """Per-replica ``gamma_t``, shape ``(R,)``."""
        a = self.alpha
        return np.einsum("rk,rk->r", a, a)

    @property
    def alive(self) -> np.ndarray:
        """Per-replica surviving-opinion counts, shape ``(R,)``."""
        return np.count_nonzero(self.counts, axis=1)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"BatchPopulationEngine({self.dynamics.name}, "
            f"R={self.num_replicas}, n={self.num_vertices}, "
            f"k={self.num_opinions}, round={self.round_index}, "
            f"frozen={int(self.frozen.sum())})"
        )
