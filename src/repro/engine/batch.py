"""Vectorised batch-replica engine: R population chains in lockstep.

:func:`~repro.engine.runner.replicate` advances R independent runs as a
Python loop over single :class:`~repro.engine.population.PopulationEngine`
instances — R round-loops, each paying the per-call numpy overhead on tiny
arrays.  This engine instead holds all R replicas as one ``(R, k)`` int64
count matrix and advances every *unfinished* replica with a single call to
the dynamics' ``population_step_batch``.  Every dynamics in the catalogue
is fully vectorised there: one batched multinomial for 3-Majority and
Voter, a binomial + multinomial pair for 2-Choices and Undecided-State, a
batched group-law multinomial for the Median rule, and a chunked
shared-sample pass for h-Majority (``benchmarks/bench_batch_dynamics.py``
guards the overrides and tracks the speedups), so a ``replicate``-style
workload has one vectorised hot loop instead of R sequential ones.

The stopping rule is dynamics-aware: each round the engine asks the
dynamics' ``consensus_mask_batch`` which rows stopped, so dynamics with
auxiliary labels keep their own convention — for Undecided-State,
"consensus" means one *decided* opinion holds everything and the
(absorbing, practically unreachable) all-undecided row counts as
censored, never as a winner.

Each row is the same Markov chain a single :class:`PopulationEngine` runs
(the tests check distributional agreement via KS tests), but all rows
share one generator, so a batch run is *not* bitwise-identical to R
seeded sequential runs — equal in distribution, not in realisation.

Rows are frozen the round they stop: they are excluded from subsequent
sampling, their count vectors never change again, and their stopping
round is recorded.  The stopping rule is consensus by default, or a
caller-supplied ``target`` predicate evaluated per row.  An optional
F-bounded adversary corrupts every active row once per round (after the
dynamics, before the stopping check — the same interleaving as the
sequential adversarial chain), using the strategy's vectorised
``corrupt_batch`` with the contract enforced on every row.  The engine
keeps running until every row is frozen or the round budget is spent.
"""

from __future__ import annotations

import copy
from collections.abc import Callable

import numpy as np

from repro.adversary.base import (
    Adversary,
    enforce_corruption_contract_batch,
)
from repro.backends import resolve_backend, use_backend
from repro.core.base import Dynamics
from repro.engine.registry import register_engine
from repro.engine.runner import RunResult
from repro.errors import ConfigurationError, ConsensusNotReached
from repro.seeding import RandomState, as_generator
from repro.state import validate_counts

__all__ = ["BatchPopulationEngine", "build_replica_matrix"]


def build_replica_matrix(
    counts: np.ndarray, num_replicas: int | None
) -> np.ndarray:
    """Normalise a batch engine's start into an ``(R, k)`` count matrix.

    Accepts either a 1-D configuration (tiled ``num_replicas`` times) or
    an explicit ``(R, k)`` matrix (validated row-wise, ``num_replicas``
    optional but checked when given); every row must carry the same
    total mass.  Shared by the synchronous and asynchronous batch
    engines so both accept starts in exactly the same shapes.
    """
    arr = np.asarray(counts)
    if arr.ndim == 1:
        if num_replicas is None:
            raise ConfigurationError(
                "num_replicas is required when counts is a single "
                "1-D configuration"
            )
        if num_replicas < 1:
            raise ConfigurationError(
                f"num_replicas must be at least 1, got {num_replicas}"
            )
        base = validate_counts(arr)
        return np.tile(base, (int(num_replicas), 1))
    if arr.ndim == 2:
        rows = [validate_counts(row) for row in arr]
        if num_replicas is not None and num_replicas != len(rows):
            raise ConfigurationError(
                f"counts has {len(rows)} rows but num_replicas="
                f"{num_replicas}"
            )
        matrix = np.stack(rows)
        totals = matrix.sum(axis=1)
        if (totals != totals[0]).any():
            raise ConfigurationError(
                "every replica row must have the same total mass; "
                f"got row sums {np.unique(totals).tolist()}"
            )
        return matrix
    raise ConfigurationError(
        f"counts must be 1-D or (R, k), got shape {arr.shape}"
    )


class BatchPopulationEngine:
    """Advance R replicas of a population chain as one count matrix.

    Parameters
    ----------
    dynamics:
        Any :class:`~repro.core.base.Dynamics`.  Every catalogued
        dynamics (3-Majority, 2-Choices, Voter, Median, Undecided-State,
        h-Majority) runs fully vectorised; third-party dynamics without
        a ``population_step_batch`` override fall back to a row loop
        (correct, no speedup).
    counts:
        Either a 1-D count vector shared by every replica, or an
        ``(R, k)`` matrix giving each replica its own start.  Every row
        must have the same total mass ``n``.
    num_replicas:
        Number of replicas R.  Required with a 1-D ``counts``; with a
        matrix it must match the row count (or be omitted).
    seed:
        Anything accepted by :func:`repro.seeding.as_generator`.  One
        stream drives all replicas.
    adversary:
        Optional F-bounded :class:`~repro.adversary.base.Adversary`
        corrupting every active row after each round via
        ``corrupt_batch`` (contract-checked per row).
    target:
        Optional stopping predicate on a single row's count vector;
        replaces the consensus check, evaluated per active row per
        round.  Rows satisfying it freeze exactly like consensus rows.
    element_budget:
        Optional override of the dynamics' ``batch_element_budget`` —
        the scratch-element ceiling that chunks replica rows in batch
        steps whose intermediates outgrow ``R * k`` (h-Majority's
        ``(R, n*h)`` sample matrix, Median's ``(R, k, k)`` law tensor).
        Lower it to cap memory, raise it to take bigger vectorised
        bites; it never changes the sampled chain.  Applied to a
        shallow copy of the dynamics (exposed as ``self.dynamics``), so
        the caller's instance keeps its own budget.
    backend:
        Optional compute backend pinned for this engine's steps (name,
        instance, or ``None``/``"auto"`` to inherit the ambient backend
        — see :mod:`repro.backends`).  Like ``element_budget``, a pure
        performance knob: it never changes the sampled chain's law.
    record_hook:
        Optional observation callback ``hook(round_index, counts,
        frozen)`` invoked after every :meth:`step` with the engine's
        own state (the live ``(R, k)`` matrix and ``(R,)`` mask —
        copy if you keep them).  The batch-engine counterpart of the
        sequential engines' :class:`~repro.engine.callbacks.Observer`
        protocol, used by :mod:`repro.invariants` to record traces;
        costs nothing when ``None``.

    Attributes
    ----------
    counts:
        The ``(R, k)`` configuration matrix (owned by the engine).
    round_index:
        Synchronous rounds executed so far (shared by all replicas).
    frozen:
        Boolean ``(R,)`` mask of replicas that stopped (consensus, or
        the ``target`` predicate when given).
    consensus_rounds:
        Int ``(R,)`` array of per-replica stopping times (-1 while
        unfinished).
    """

    def __init__(
        self,
        dynamics: Dynamics,
        counts: np.ndarray,
        num_replicas: int | None = None,
        seed: RandomState = None,
        adversary: Adversary | None = None,
        target: Callable[[np.ndarray], bool] | None = None,
        element_budget: int | None = None,
        backend: str | None = None,
        record_hook: Callable[[int, np.ndarray, np.ndarray], None]
        | None = None,
    ) -> None:
        self.backend = (
            None if backend in (None, "auto") else resolve_backend(backend)
        )
        self.record_hook = record_hook
        if element_budget is not None:
            if element_budget < 1:
                raise ConfigurationError(
                    "element_budget must be positive, got "
                    f"{element_budget}"
                )
            # Override on a shallow copy so a dynamics instance shared
            # with other engines (or used directly) keeps its budget.
            dynamics = copy.copy(dynamics)
            dynamics.batch_element_budget = int(element_budget)
        self.dynamics = dynamics
        self.adversary = adversary
        self.target = target
        self.counts = build_replica_matrix(counts, num_replicas)
        self.num_replicas = int(self.counts.shape[0])
        self.num_opinions = int(self.counts.shape[1])
        self.num_vertices = int(self.counts[0].sum())
        self.rng = as_generator(seed)
        self.round_index = 0
        self.frozen = self._stopped(self.counts)
        self.consensus_rounds = np.where(self.frozen, 0, -1).astype(
            np.int64
        )

    def _stopped(self, rows: np.ndarray) -> np.ndarray:
        """Per-row stopping mask: consensus, or the ``target`` predicate.

        The default consensus check is the *dynamics'*
        ``consensus_mask_batch``, so label conventions travel with the
        dynamics (Undecided-State only stops on a decided winner).
        Targets exposing a ``batch(rows)`` method (e.g.
        :class:`~repro.adversary.tolerance.LeaderThresholdTarget`) are
        evaluated in one vectorised call; plain predicates fall back to
        a per-row loop.
        """
        if self.target is None:
            return np.asarray(
                self.dynamics.consensus_mask_batch(rows), dtype=bool
            )
        batch_predicate = getattr(self.target, "batch", None)
        if batch_predicate is not None:
            return np.asarray(batch_predicate(rows), dtype=bool)
        return np.fromiter(
            (bool(self.target(row)) for row in rows),
            dtype=bool,
            count=rows.shape[0],
        )

    def step(self) -> np.ndarray:
        """Advance every unfinished replica one round.

        Frozen rows are excluded from sampling (and from corruption)
        and keep their counts; rows that hit the stopping rule this
        round — checked *after* the adversary's corruption, matching
        the sequential adversarial chain — record it and freeze.
        """
        active = ~self.frozen
        self.round_index += 1
        if active.any():
            with use_backend(self.backend):
                new_rows = self.dynamics.population_step_batch(
                    self.counts[active], self.rng
                )
            if self.adversary is not None:
                # The adversary gets its own copy so an in-place-
                # mutating corrupt_batch cannot defeat the contract
                # check by changing the "before" matrix too.
                corrupted = self.adversary.corrupt_batch(
                    new_rows.copy(), self.rng
                )
                new_rows = enforce_corruption_contract_batch(
                    new_rows, corrupted, self.adversary.budget
                )
            self.counts[active] = new_rows
            active_indices = np.flatnonzero(active)
            done = active_indices[self._stopped(new_rows)]
            self.consensus_rounds[done] = self.round_index
            self.frozen[done] = True
        if self.record_hook is not None:
            self.record_hook(self.round_index, self.counts, self.frozen)
        return self.counts

    def all_consensus(self) -> bool:
        """True once every replica has stopped."""
        return bool(self.frozen.all())

    def run_until_consensus(self, max_rounds: int) -> list[RunResult]:
        """Run until every replica froze or ``max_rounds`` rounds passed.

        Returns one :class:`~repro.engine.runner.RunResult` per replica,
        in row order: converged replicas report their stopping time and
        winner (``None`` unless at strict consensus); censored ones
        report the budget with ``winner=None``.
        """
        if max_rounds < 0:
            raise ConfigurationError(
                f"max_rounds must be non-negative, got {max_rounds}"
            )
        while not self.frozen.all() and self.round_index < max_rounds:
            self.step()
        return self.results()

    def results(self) -> list[RunResult]:
        """Per-replica results for the rounds executed so far.

        ``winner`` uses the dynamics' consensus convention, so an
        Undecided-State row reports a winner only when a *decided*
        opinion holds everything (the winning label is then that decided
        opinion — the undecided slot is empty at consensus).
        """
        winners = self.counts.argmax(axis=1)
        at_consensus = np.asarray(
            self.dynamics.consensus_mask_batch(self.counts), dtype=bool
        )
        out: list[RunResult] = []
        for r in range(self.num_replicas):
            converged = bool(self.frozen[r])
            out.append(
                RunResult(
                    converged=converged,
                    rounds=int(self.consensus_rounds[r])
                    if converged
                    else self.round_index,
                    winner=int(winners[r])
                    if converged and at_consensus[r]
                    else None,
                    final_counts=self.counts[r].copy(),
                )
            )
        return out

    # ------------------------------------------------------------------
    # Inspection helpers (matrix-level views)
    # ------------------------------------------------------------------
    @property
    def alpha(self) -> np.ndarray:
        """Fractional populations, shape ``(R, k)``."""
        return self.counts / self.num_vertices

    @property
    def gamma(self) -> np.ndarray:
        """Per-replica ``gamma_t``, shape ``(R,)``."""
        a = self.alpha
        return np.einsum("rk,rk->r", a, a)

    @property
    def alive(self) -> np.ndarray:
        """Per-replica surviving-opinion counts, shape ``(R,)``."""
        return np.count_nonzero(self.counts, axis=1)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        adv = (
            f", adversary={self.adversary!r}"
            if self.adversary is not None
            else ""
        )
        return (
            f"BatchPopulationEngine({self.dynamics.name}, "
            f"R={self.num_replicas}, n={self.num_vertices}, "
            f"k={self.num_opinions}, round={self.round_index}, "
            f"frozen={int(self.frozen.sum())}{adv})"
        )


def _run_spec(spec) -> list[RunResult]:
    """Registry adapter: all R replicas in one vectorised engine.

    Honors ``spec.on_budget`` like every other engine adapter: with
    ``"raise"``, censored replicas raise
    :class:`~repro.errors.ConsensusNotReached` here rather than relying
    on the :func:`~repro.simulation.run.execute` dispatcher, so direct
    ``get_engine("batch").run(spec)`` callers see the same contract as
    population/agent/async.
    """
    engine = BatchPopulationEngine(
        spec.resolved_dynamics(),
        spec.initial_counts(),
        num_replicas=spec.replicas,
        seed=spec.seed,
        adversary=spec.resolved_adversary(),
        target=spec.target,
        backend=getattr(spec, "backend", None),
    )
    budget = spec.round_budget()
    results = engine.run_until_consensus(budget)
    if spec.on_budget == "raise":
        censored = sum(1 for result in results if not result.converged)
        if censored:
            raise ConsensusNotReached(
                budget,
                f"{censored} of {spec.replicas} replicas did not reach "
                f"consensus within {budget} rounds",
            )
    return results


register_engine(
    "batch",
    _run_spec,
    description=(
        "R replicas advanced in lockstep as one (R, k) count matrix"
    ),
    supports_target=True,
    supports_observers=False,
    supports_adversary=True,
)
