"""Vectorised asynchronous batch engine: R async chains in lockstep.

The [CMRSS25] asynchronous model updates one uniformly random vertex per
tick, so ticks are inherently sequential *in time* — the law changes
after every tick and there is nothing to vectorise within one chain.
What *can* be vectorised is replication: R independent asynchronous
chains advanced tick-by-tick in lockstep as one ``(R, k)`` count matrix,
with each tick's single-vertex update sampled across every active row
in one call to the dynamics' ``async_population_step_batch``.  A
``replicate``-style asynchronous workload then costs one vectorised
Python loop over ticks instead of R sequential ones — the same
replica-axis trick as :class:`~repro.engine.batch.BatchPopulationEngine`
applied to the paper's sync-vs-async ``~O(min(kn, n^{3/2}))``
comparison (``benchmarks/bench_async_batch.py`` tracks the speedup).

Each row is the same Markov chain a single
:class:`~repro.engine.asynchronous.AsyncPopulationEngine` runs (the
tests check distributional agreement via KS tests), but all rows share
one generator, so a batch run is equal to R seeded sequential runs in
distribution, not in realisation.

Rows are frozen the tick they reach the dynamics' consensus (gated by
the cheap one-opinion-holds-all filter, so the per-tick cost of the
check is one row-wise max): they are excluded from subsequent sampling
and their stopping tick is recorded.  An optional F-bounded adversary
corrupts every active row once per synchronous-equivalent round (after
every ``n`` ticks — the same [GL18] budget translation as the
sequential asynchronous engine) through the vectorised
``corrupt_batch`` contract path.
"""

from __future__ import annotations

import math
from collections.abc import Callable

import numpy as np

from repro.adversary.base import (
    Adversary,
    enforce_corruption_contract_batch,
)
from repro.backends import resolve_backend, use_backend
from repro.core.base import Dynamics
from repro.engine.batch import build_replica_matrix
from repro.engine.registry import register_engine
from repro.engine.runner import RunResult
from repro.errors import ConfigurationError, ConsensusNotReached
from repro.seeding import RandomState, as_generator

__all__ = ["AsyncBatchPopulationEngine"]


class AsyncBatchPopulationEngine:
    """Advance R asynchronous chains tick-by-tick as one count matrix.

    Parameters
    ----------
    dynamics:
        Any :class:`~repro.core.base.Dynamics` with asynchronous
        support.  Every catalogued dynamics runs fully vectorised via
        its ``async_population_step_batch`` override; third-party
        dynamics without one fall back to a per-row loop over
        ``async_population_step`` (correct, no speedup).
    counts:
        Either a 1-D count vector shared by every replica, or an
        ``(R, k)`` matrix giving each replica its own start (same
        shapes as :class:`~repro.engine.batch.BatchPopulationEngine`).
    num_replicas:
        Number of replicas R (required with a 1-D ``counts``).
    seed:
        Anything accepted by :func:`repro.seeding.as_generator`.  One
        stream drives all replicas.
    adversary:
        Optional F-bounded :class:`~repro.adversary.base.Adversary`
        corrupting every active row after each synchronous-equivalent
        round (every ``n`` ticks) via ``corrupt_batch``
        (contract-checked per row).
    backend:
        Optional compute backend pinned for this engine's ticks (name,
        instance, or ``None``/``"auto"`` to inherit the ambient backend
        — see :mod:`repro.backends`); a pure performance knob that
        never changes the sampled law.
    record_hook:
        Optional observation callback ``hook(tick_index, counts,
        frozen)`` invoked after every :meth:`step` (i.e. per tick) with
        the engine's own state.  Costs nothing when ``None``; used by
        :mod:`repro.invariants` to record traces.

    Attributes
    ----------
    counts:
        The ``(R, k)`` configuration matrix (owned by the engine).
    tick_index:
        Asynchronous ticks executed so far (shared by all replicas).
    frozen:
        Boolean ``(R,)`` mask of replicas that reached consensus.
    consensus_ticks:
        Int ``(R,)`` array of per-replica stopping ticks (-1 while
        unfinished).
    """

    def __init__(
        self,
        dynamics: Dynamics,
        counts: np.ndarray,
        num_replicas: int | None = None,
        seed: RandomState = None,
        adversary: Adversary | None = None,
        backend: str | None = None,
        record_hook: Callable[[int, np.ndarray, np.ndarray], None]
        | None = None,
    ) -> None:
        self.backend = (
            None if backend in (None, "auto") else resolve_backend(backend)
        )
        self.record_hook = record_hook
        self.dynamics = dynamics
        self.adversary = adversary
        self.counts = build_replica_matrix(counts, num_replicas)
        self.num_replicas = int(self.counts.shape[0])
        self.num_opinions = int(self.counts.shape[1])
        self.num_vertices = int(self.counts[0].sum())
        self.rng = as_generator(seed)
        self.tick_index = 0
        self.frozen = np.asarray(
            self.dynamics.consensus_mask_batch(self.counts), dtype=bool
        )
        self.consensus_ticks = np.where(self.frozen, 0, -1).astype(
            np.int64
        )

    def step(self) -> np.ndarray:
        """Execute one asynchronous tick on every unfinished replica.

        Frozen rows are excluded from sampling (and from corruption)
        and keep their counts.  With an adversary, every ``n``-th tick
        closes a synchronous-equivalent round and triggers one checked
        vectorised corruption of the active rows.  Rows reaching the
        dynamics' consensus this tick — checked after the corruption,
        matching the sequential adversarial chain — record the tick and
        freeze.
        """
        active = ~self.frozen
        self.tick_index += 1
        if active.any():
            with use_backend(self.backend):
                new_rows = self.dynamics.async_population_step_batch(
                    self.counts[active], self.rng
                )
            if (
                self.adversary is not None
                and self.tick_index % self.num_vertices == 0
            ):
                # The adversary gets its own copy so an in-place-
                # mutating corrupt_batch cannot defeat the contract
                # check by changing the "before" matrix too.
                corrupted = self.adversary.corrupt_batch(
                    new_rows.copy(), self.rng
                )
                new_rows = enforce_corruption_contract_batch(
                    new_rows, corrupted, self.adversary.budget
                )
            self.counts[active] = new_rows
            # Cheap hot-path filter first (one row-wise max); only rows
            # where a single label holds everything pay the dynamics'
            # own convention check — for Undecided-State an
            # all-undecided row never freezes (it surfaces as
            # censored), exactly like the sequential async engine.
            hit = new_rows.max(axis=1) == self.num_vertices
            if hit.any():
                confirmed = np.zeros_like(hit)
                confirmed[hit] = np.asarray(
                    self.dynamics.consensus_mask_batch(new_rows[hit]),
                    dtype=bool,
                )
                done = np.flatnonzero(active)[confirmed]
                self.consensus_ticks[done] = self.tick_index
                self.frozen[done] = True
        if self.record_hook is not None:
            self.record_hook(self.tick_index, self.counts, self.frozen)
        return self.counts

    def run_ticks(self, ticks: int) -> np.ndarray:
        """Execute exactly ``ticks`` ticks (finished rows stay frozen)."""
        if ticks < 0:
            raise ConfigurationError(
                f"ticks must be non-negative, got {ticks}"
            )
        for _ in range(ticks):
            self.step()
        return self.counts

    def run_until_consensus(self, max_ticks: int) -> list[RunResult]:
        """Run until every replica froze or ``max_ticks`` ticks passed.

        Returns one :class:`~repro.engine.runner.RunResult` per
        replica, in row order (see :meth:`results`).
        """
        if max_ticks < 0:
            raise ConfigurationError(
                f"max_ticks must be non-negative, got {max_ticks}"
            )
        while not self.frozen.all() and self.tick_index < max_ticks:
            self.step()
        return self.results()

    def all_consensus(self) -> bool:
        """True once every replica has stopped."""
        return bool(self.frozen.all())

    def results(self) -> list[RunResult]:
        """Per-replica results for the ticks executed so far.

        ``rounds`` is the synchronous-equivalent ``ceil(ticks / n)``
        (the convention of the sequential ``async`` registry adapter,
        so batched and sequential measurements aggregate in the same
        units) with the raw tick count in ``metrics["ticks"]``;
        ``winner`` follows the dynamics' consensus convention.
        """
        winners = self.counts.argmax(axis=1)
        at_consensus = np.asarray(
            self.dynamics.consensus_mask_batch(self.counts), dtype=bool
        )
        out: list[RunResult] = []
        for r in range(self.num_replicas):
            converged = bool(self.frozen[r])
            ticks = int(
                self.consensus_ticks[r] if converged else self.tick_index
            )
            out.append(
                RunResult(
                    converged=converged,
                    rounds=int(math.ceil(ticks / self.num_vertices)),
                    winner=int(winners[r])
                    if converged and at_consensus[r]
                    else None,
                    final_counts=self.counts[r].copy(),
                    metrics={"ticks": ticks},
                )
            )
        return out

    # ------------------------------------------------------------------
    # Inspection helpers (matrix-level views)
    # ------------------------------------------------------------------
    @property
    def round_index(self) -> float:
        """Synchronous-equivalent rounds elapsed (= ticks / n)."""
        return self.tick_index / self.num_vertices

    @property
    def consensus_rounds(self) -> np.ndarray:
        """Per-replica stopping times in whole synchronous-equivalent
        rounds (``consensus_ticks // n``; -1 while unfinished)."""
        return np.where(
            self.frozen,
            self.consensus_ticks // self.num_vertices,
            -1,
        ).astype(np.int64)

    @property
    def alpha(self) -> np.ndarray:
        """Fractional populations, shape ``(R, k)``."""
        return self.counts / self.num_vertices

    @property
    def gamma(self) -> np.ndarray:
        """Per-replica ``gamma_t``, shape ``(R,)``."""
        a = self.alpha
        return np.einsum("rk,rk->r", a, a)

    @property
    def alive(self) -> np.ndarray:
        """Per-replica surviving-opinion counts, shape ``(R,)``."""
        return np.count_nonzero(self.counts, axis=1)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        adv = (
            f", adversary={self.adversary!r}"
            if self.adversary is not None
            else ""
        )
        return (
            f"AsyncBatchPopulationEngine({self.dynamics.name}, "
            f"R={self.num_replicas}, n={self.num_vertices}, "
            f"k={self.num_opinions}, tick={self.tick_index}, "
            f"frozen={int(self.frozen.sum())}{adv})"
        )


def _run_spec(spec) -> list[RunResult]:
    """Registry adapter: all R asynchronous replicas in one engine.

    The spec's round budget is interpreted as ``max_rounds * n`` ticks
    (like the sequential ``async`` adapter); ``on_budget="raise"``
    raises on any censored replica here, so direct
    ``get_engine("async-batch").run(spec)`` callers see the same
    contract as every other engine.
    """
    engine = AsyncBatchPopulationEngine(
        spec.resolved_dynamics(),
        spec.initial_counts(),
        num_replicas=spec.replicas,
        seed=spec.seed,
        adversary=spec.resolved_adversary(),
        backend=getattr(spec, "backend", None),
    )
    budget = spec.round_budget()
    results = engine.run_until_consensus(budget * spec.n)
    if spec.on_budget == "raise":
        censored = sum(1 for result in results if not result.converged)
        if censored:
            raise ConsensusNotReached(
                budget,
                f"{censored} of {spec.replicas} replicas did not reach "
                f"consensus within {budget * spec.n} ticks "
                f"({budget} synchronous-equivalent rounds)",
            )
    return results


register_engine(
    "async-batch",
    _run_spec,
    description=(
        "R one-vertex-per-tick chains advanced in lockstep as one "
        "(R, k) count matrix"
    ),
    supports_target=False,
    supports_observers=False,
    supports_adversary=True,
)
