"""String-keyed engine registry: engines plug into the simulation API.

Historically :func:`repro.simulation.run.execute` dispatched on the
spec's ``engine`` string through an if/elif chain, which meant a new
engine had to touch three layers (the engine module, the dispatcher and
the spec validation).  This registry inverts that: each engine module
registers one :class:`EngineInfo` describing

* how to execute a :class:`~repro.simulation.spec.SimulationSpec` on
  that engine (``run``: a callable ``spec -> list[RunResult]``), and
* which spec dimensions the engine supports (``graph``, ``target``,
  ``observers``, ``adversary``) — the spec validates against these
  capability flags instead of hard-coding per-engine rules.

Registering an entry is the *only* step needed to expose a new engine:
``SimulationSpec(engine="name")`` validates against the entry's
capabilities, :func:`~repro.simulation.run.execute` dispatches through
it, and the CLI's ``--engine`` choices are built from
:func:`available_engines`.

The runner callables receive the spec duck-typed (this module must not
import :mod:`repro.simulation`, which sits above the engine layer), so
engine modules depend only on the engine/core/adversary layers.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence
from dataclasses import dataclass
from typing import Protocol, runtime_checkable

from repro.errors import ConfigurationError

__all__ = [
    "Engine",
    "EngineInfo",
    "available_engines",
    "get_engine",
    "register_engine",
    "unregister_engine",
]


@runtime_checkable
class Engine(Protocol):
    """Structural protocol shared by the step-based engines.

    Anything exposing ``step()``, ``counts`` and ``round_index`` can be
    driven by :func:`~repro.engine.runner.run_until_consensus`; the
    population, agent, batch and adversarial engines all conform (the
    asynchronous engine conforms with ``round_index`` measured in
    synchronous-equivalent rounds).
    """

    counts: object
    round_index: object

    def step(self):  # pragma: no cover - protocol signature only
        ...


@dataclass(frozen=True)
class EngineInfo:
    """One registered engine: spec runner plus capability flags.

    ``run`` executes every replica of a validated spec and returns the
    per-replica :class:`~repro.engine.runner.RunResult` list; the
    dispatcher wraps them into a ``ResultSet`` and applies the uniform
    ``on_budget`` policy.  The ``supports_*`` flags drive spec
    validation — a spec requesting an unsupported dimension fails at
    construction, not mid-run.
    """

    name: str
    run: Callable[[object], Sequence]
    description: str = ""
    supports_graph: bool = False
    supports_target: bool = False
    supports_observers: bool = False
    supports_adversary: bool = False


_REGISTRY: dict[str, EngineInfo] = {}


def register_engine(
    name: str,
    run: Callable[[object], Sequence],
    *,
    description: str = "",
    supports_graph: bool = False,
    supports_target: bool = False,
    supports_observers: bool = False,
    supports_adversary: bool = False,
    replace: bool = False,
) -> EngineInfo:
    """Register an engine under ``name``; returns the registry entry.

    Names are case-sensitive spec strings (``"population"``,
    ``"batch"``, ...).  Re-registering an existing name raises unless
    ``replace=True`` (useful for tests and experimental overrides).

    Capability flags fail closed (all default ``False``): an engine
    must explicitly declare the spec dimensions its runner honours, so
    a runner that ignores ``spec.target`` or ``spec.adversary`` can
    never silently run the un-targeted, un-attacked chain.
    """
    if not name or not isinstance(name, str):
        raise ConfigurationError(
            f"engine name must be a non-empty string, got {name!r}"
        )
    if name in _REGISTRY and not replace:
        raise ConfigurationError(
            f"engine {name!r} is already registered; pass replace=True "
            "to override it"
        )
    info = EngineInfo(
        name=name,
        run=run,
        description=description,
        supports_graph=supports_graph,
        supports_target=supports_target,
        supports_observers=supports_observers,
        supports_adversary=supports_adversary,
    )
    _REGISTRY[name] = info
    return info


def unregister_engine(name: str) -> None:
    """Remove a registry entry (no-op when absent); for tests/plugins."""
    _REGISTRY.pop(name, None)


def get_engine(name: str) -> EngineInfo:
    """Look up a registered engine by its spec string."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown engine {name!r}; known engines: "
            f"{available_engines()}"
        ) from None


def available_engines() -> list[str]:
    """Sorted spec strings of every registered engine."""
    return sorted(_REGISTRY)
