"""repro — reproduction of "3-Majority and 2-Choices with Many Opinions".

A production-quality simulator, theory toolbox and experiment harness
for the synchronous consensus dynamics analysed by Shimizu & Shiraga
(PODC 2025, arXiv:2503.02426).

Quickstart
----------
>>> from repro import Simulation
>>> results = (
...     Simulation.of("3-majority")
...     .n(10_000).k(50).replicas(8).batch().seed(1)
...     .run()
... )
>>> results.num_converged
8

The engine-level API is still available for fine-grained control:

>>> from repro import ThreeMajority, PopulationEngine, run_until_consensus
>>> from repro.configs import balanced
>>> engine = PopulationEngine(ThreeMajority(), balanced(10_000, 50), seed=1)
>>> result = run_until_consensus(engine, max_rounds=10_000)
>>> result.converged
True

Package map
-----------
``repro.core``        the dynamics (3-Majority, 2-Choices, h-Majority,
                      undecided, voter, median);
``repro.backends``    pluggable compute backends (``numpy`` reference,
                      opt-in ``numba`` JIT kernels for the hot paths);
``repro.engine``      exact population engine, agent engine, async
                      engine, vectorised batch-replica engine, run
                      control;
``repro.simulation``  the unified front door: declarative
                      ``SimulationSpec``, fluent ``Simulation`` builder
                      and ``ResultSet`` aggregates;
``repro.graphs``      complete graph and the Section 2.5 graph families;
``repro.configs``     initial configurations keyed to the theorems;
``repro.theory``      the paper's formulas: drift (Lemma 4.1), Bernstein
                      condition (Def. 3.3), Freedman bounds (Lemma 3.5),
                      stopping times (Def. 4.4), bound curves (Fig. 1);
``repro.adversary``   F-bounded adversaries ([GL18] model);
``repro.protocols``   population-protocol substrate ([AAE07] approx.
                      majority, pairwise undecided dynamics);
``repro.analysis``    estimators, scaling fits, tables, reporting;
``repro.sweep``       cached ad-hoc parameter sweeps;
``repro.experiments`` one module per paper table/figure/theorem.
"""

from repro.adversary import (
    AdversarialPopulationEngine,
    Adversary,
    RandomCorruption,
    ReviveWeakest,
    SupportRunnerUp,
    available_adversaries,
    make_adversary,
)
from repro.backends import (
    ComputeBackend,
    available_backends,
    default_backend,
    get_backend,
    register_backend,
    use_backend,
)
from repro.core import (
    Dynamics,
    HMajority,
    MedianRule,
    ThreeMajority,
    TwoChoices,
    UndecidedStateDynamics,
    Voter,
    make_dynamics,
)
from repro.engine import (
    AgentEngine,
    AsyncBatchPopulationEngine,
    AsyncPopulationEngine,
    BatchAgentEngine,
    BatchPopulationEngine,
    EngineInfo,
    PopulationEngine,
    RunResult,
    TrajectoryRecorder,
    available_engines,
    get_engine,
    register_engine,
    replicate,
    run_until_consensus,
)
from repro.errors import (
    BackendUnavailableError,
    ConfigurationError,
    ConsensusNotReached,
    GraphError,
    ReproError,
    StateError,
)
from repro.graphs import CompleteGraph
from repro.protocols import (
    ApproximateMajority,
    PairwiseEngine,
    UndecidedPairwise,
)
from repro.simulation import ResultSet, Simulation, SimulationSpec
from repro.sweep import SweepSpec, run_sweep

__version__ = "1.0.0"

__all__ = [
    "AdversarialPopulationEngine",
    "Adversary",
    "AgentEngine",
    "ApproximateMajority",
    "AsyncBatchPopulationEngine",
    "AsyncPopulationEngine",
    "BackendUnavailableError",
    "BatchAgentEngine",
    "BatchPopulationEngine",
    "CompleteGraph",
    "ComputeBackend",
    "ConfigurationError",
    "ConsensusNotReached",
    "Dynamics",
    "EngineInfo",
    "GraphError",
    "HMajority",
    "MedianRule",
    "PairwiseEngine",
    "PopulationEngine",
    "RandomCorruption",
    "ReproError",
    "ResultSet",
    "ReviveWeakest",
    "RunResult",
    "Simulation",
    "SimulationSpec",
    "StateError",
    "SupportRunnerUp",
    "SweepSpec",
    "ThreeMajority",
    "TrajectoryRecorder",
    "TwoChoices",
    "UndecidedPairwise",
    "UndecidedStateDynamics",
    "Voter",
    "__version__",
    "available_adversaries",
    "available_backends",
    "available_engines",
    "default_backend",
    "get_backend",
    "get_engine",
    "make_adversary",
    "make_dynamics",
    "register_backend",
    "register_engine",
    "replicate",
    "run_sweep",
    "run_until_consensus",
    "use_backend",
]
