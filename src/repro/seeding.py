"""Deterministic random-number management.

Every stochastic component in the library accepts either an integer seed, a
:class:`numpy.random.Generator`, a :class:`numpy.random.SeedSequence`, or
``None`` (fresh OS entropy).  :func:`as_generator` normalises any of these
into a ``Generator``, and :func:`spawn_generators` derives independent
child streams for replicated runs, following numpy's recommended
``SeedSequence.spawn`` discipline so that parallel replicas never share a
stream.
"""

from __future__ import annotations

from collections.abc import Iterator

import numpy as np

RandomState = (
    int
    | tuple
    | list
    | np.random.Generator
    | np.random.SeedSequence
    | None
)
"""Any value accepted by the library wherever randomness is needed.

Tuples/lists of ints are composite entropy (e.g. ``(seed, stage)``) —
valid for seed sequences but not directly for :func:`as_generator`
callers that require spawnability.
"""


def as_generator(seed: RandomState = None) -> np.random.Generator:
    """Normalise ``seed`` into a :class:`numpy.random.Generator`.

    Passing an existing ``Generator`` returns it unchanged (no copy), so a
    caller can thread one stream through several components.  Integers and
    ``SeedSequence`` objects create a fresh PCG64 generator; ``None`` seeds
    from OS entropy.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    if isinstance(seed, np.random.SeedSequence):
        return np.random.default_rng(seed)
    if seed is None or isinstance(seed, (int, np.integer)):
        return np.random.default_rng(seed)
    if isinstance(seed, (tuple, list)):
        return np.random.default_rng(as_seed_sequence(seed))
    raise TypeError(
        "seed must be an int, numpy Generator, SeedSequence, "
        f"int tuple or None, got {type(seed).__name__}"
    )


def as_seed_sequence(seed: RandomState = None) -> np.random.SeedSequence:
    """Normalise ``seed`` into a :class:`numpy.random.SeedSequence`.

    Generators cannot be converted back into a ``SeedSequence``; callers
    that need spawnable entropy should pass an int/SeedSequence/None.
    """
    if isinstance(seed, np.random.SeedSequence):
        return seed
    if seed is None or isinstance(seed, (int, np.integer)):
        return np.random.SeedSequence(seed)
    if isinstance(seed, (tuple, list)) and all(
        isinstance(part, (int, np.integer)) for part in seed
    ):
        # Composite entropy, e.g. (base_seed, stage_index).
        return np.random.SeedSequence([int(part) for part in seed])
    if isinstance(seed, np.random.Generator):
        raise TypeError(
            "a Generator cannot be converted into a SeedSequence; pass the "
            "originating seed instead"
        )
    raise TypeError(
        "seed must be an int, SeedSequence or None, "
        f"got {type(seed).__name__}"
    )


def spawn_generators(
    seed: RandomState, count: int
) -> list[np.random.Generator]:
    """Derive ``count`` statistically independent generators from ``seed``.

    Used by the replication driver: replica ``i`` of a Monte-Carlo
    experiment always receives child stream ``i``, so results are
    reproducible regardless of execution order or parallelism.
    """
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    children = as_seed_sequence(seed).spawn(count)
    return [np.random.default_rng(child) for child in children]


def generator_stream(seed: RandomState) -> Iterator[np.random.Generator]:
    """Yield an unbounded stream of independent generators.

    Convenient when the number of replicas is not known in advance (e.g.
    sequential runs until a statistical stopping rule fires).
    """
    root = as_seed_sequence(seed)
    index = 0
    while True:
        # SeedSequence.spawn mutates spawn state; spawning one child at a
        # time keeps the stream extendable without re-seeding.
        (child,) = root.spawn(1)
        yield np.random.default_rng(child)
        index += 1
