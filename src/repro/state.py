"""Opinion-configuration representations and conversions.

Two equivalent representations of a configuration of ``n`` agents holding
opinions from ``{0, ..., k-1}`` are used throughout the library:

* the **count vector** ``c`` with ``c[i] = #{v : opn(v) = i}`` and
  ``c.sum() == n`` — the sufficient statistic on the complete graph with
  self-loops, used by the exact population engine;
* the **agent vector** ``opinions`` of length ``n`` with
  ``opinions[v] in [0, k)`` — required on general graphs where vertex
  identity matters.

Opinions are 0-indexed internally (the paper uses ``[k] = {1..k}``).

This module also provides the basic scalar functionals of a configuration
used throughout the paper (Definition 3.2): the fractional population
``alpha``, the squared l2-norm ``gamma`` and the pairwise bias ``delta``.
They are re-exported by :mod:`repro.theory.quantities` with fuller
documentation; the implementations live here because the engines need them
on the hot path.
"""

from __future__ import annotations

import numpy as np

from repro.errors import StateError

__all__ = [
    "CountVector",
    "agents_to_counts",
    "alpha_from_counts",
    "bias",
    "consensus_opinion",
    "counts_to_agents",
    "gamma_from_counts",
    "is_consensus",
    "num_alive",
    "support",
    "validate_agents",
    "validate_counts",
]

CountVector = np.ndarray
"""Alias documenting arrays that hold per-opinion agent counts."""


def validate_counts(counts: np.ndarray, n: int | None = None) -> np.ndarray:
    """Validate and canonicalise a count vector.

    Returns a contiguous ``int64`` copy-or-view of ``counts``.  Raises
    :class:`~repro.errors.StateError` if any entry is negative, the vector
    is empty, or the total differs from ``n`` (when ``n`` is given).
    """
    arr = np.asarray(counts)
    if arr.ndim != 1 or arr.size == 0:
        raise StateError(
            f"count vector must be 1-D and non-empty, got shape {arr.shape}"
        )
    if not np.issubdtype(arr.dtype, np.integer):
        rounded = np.rint(arr)
        if not np.allclose(arr, rounded):
            raise StateError("count vector must contain integers")
        arr = rounded
    arr = arr.astype(np.int64, copy=False)
    if (arr < 0).any():
        raise StateError("count vector must be non-negative")
    total = int(arr.sum())
    if total == 0:
        raise StateError("count vector must have positive total mass")
    if n is not None and total != n:
        raise StateError(f"count vector sums to {total}, expected n={n}")
    return arr


def validate_agents(opinions: np.ndarray, k: int | None = None) -> np.ndarray:
    """Validate an agent opinion vector; returns it as ``int64``.

    ``k`` (when given) bounds the opinion labels: every entry must lie in
    ``[0, k)``.
    """
    arr = np.asarray(opinions)
    if arr.ndim != 1 or arr.size == 0:
        raise StateError(
            f"agent vector must be 1-D and non-empty, got shape {arr.shape}"
        )
    if not np.issubdtype(arr.dtype, np.integer):
        raise StateError("agent vector must contain integer opinion labels")
    arr = arr.astype(np.int64, copy=False)
    if (arr < 0).any():
        raise StateError("opinion labels must be non-negative")
    if k is not None and (arr >= k).any():
        raise StateError(f"opinion labels must be < k={k}")
    return arr


def agents_to_counts(opinions: np.ndarray, k: int) -> np.ndarray:
    """Histogram an agent vector into a length-``k`` count vector."""
    arr = validate_agents(opinions, k=k)
    return np.bincount(arr, minlength=k).astype(np.int64)


def counts_to_agents(
    counts: np.ndarray,
    rng: np.random.Generator | None = None,
    shuffle: bool = False,
) -> np.ndarray:
    """Expand a count vector into an explicit agent vector.

    By default agents are laid out in opinion-sorted blocks, which is the
    canonical representative of the exchangeable class.  Pass
    ``shuffle=True`` (with an ``rng``) to randomise vertex identities,
    which matters when the vector seeds an agent-level run on a
    *non-complete* graph.
    """
    arr = validate_counts(counts)
    opinions = np.repeat(np.arange(arr.size, dtype=np.int64), arr)
    if shuffle:
        if rng is None:
            raise ValueError("shuffle=True requires an rng")
        rng.shuffle(opinions)
    return opinions


def alpha_from_counts(counts: np.ndarray) -> np.ndarray:
    """Fractional populations ``alpha[i] = counts[i] / n`` (Def. 3.2(i))."""
    arr = np.asarray(counts, dtype=np.float64)
    return arr / arr.sum()


def gamma_from_counts(counts: np.ndarray) -> float:
    """Squared l2-norm ``gamma = sum_i alpha_i^2`` (Def. 3.2(iii)).

    Satisfies ``1/k <= gamma <= 1`` with ``gamma = 1`` exactly at
    consensus and ``gamma = 1/k`` exactly at the balanced configuration.
    """
    alpha = alpha_from_counts(counts)
    return float(np.dot(alpha, alpha))


def bias(counts: np.ndarray, i: int, j: int) -> float:
    """Bias ``delta(i, j) = alpha_i - alpha_j`` (Def. 3.2(ii))."""
    arr = np.asarray(counts, dtype=np.float64)
    n = arr.sum()
    return float((arr[i] - arr[j]) / n)


def support(counts: np.ndarray) -> np.ndarray:
    """Indices of opinions with at least one supporter."""
    return np.flatnonzero(np.asarray(counts) > 0)


def num_alive(counts: np.ndarray) -> int:
    """Number of opinions with at least one supporter."""
    return int(np.count_nonzero(np.asarray(counts)))


def is_consensus(counts: np.ndarray) -> bool:
    """True when a single opinion holds all the mass."""
    return num_alive(counts) == 1


def consensus_opinion(counts: np.ndarray) -> int | None:
    """The winning opinion at consensus, or ``None`` if not at consensus."""
    alive = support(counts)
    if alive.size == 1:
        return int(alive[0])
    return None
