"""The Voter model — the simplest pull baseline.

Each vertex adopts the opinion of one uniformly random neighbour.  On the
complete graph the expected fractions are a martingale
(``E[alpha_t] = alpha_{t-1}``), so consensus is driven purely by drift of
the variance and takes ``Theta(n)`` rounds — far slower than 3-Majority
and 2-Choices.  The baseline experiments use it to show *why* the paper's
dynamics matter: three samples beat one by an exponential margin in n.
"""

from __future__ import annotations

import numpy as np

from repro.core.base import (
    Dynamics,
    batch_multinomial_counts,
    iter_row_chunks,
    multinomial_counts,
    sample_and_gather_neighbor_opinions_batch,
    sample_holders_batch,
)
from repro.graphs.base import Graph

__all__ = ["Voter"]


class Voter(Dynamics):
    """Synchronous Voter model (adopt one random neighbour's opinion)."""

    name = "voter"
    samples_per_round = 1

    def population_step(
        self, counts: np.ndarray, rng: np.random.Generator
    ) -> np.ndarray:
        alive = np.flatnonzero(counts)
        if alive.size == 1:
            return counts.copy()
        n = int(counts.sum())
        alpha = counts[alive] / n
        new_counts = np.zeros_like(counts)
        new_counts[alive] = multinomial_counts(n, alpha, rng, self.name)
        return new_counts

    def population_step_batch(
        self, counts: np.ndarray, rng: np.random.Generator
    ) -> np.ndarray:
        """All R replicas in one multinomial call (law = alpha itself)."""
        counts = np.asarray(counts, dtype=np.int64)
        totals = counts.sum(axis=1)
        alpha = counts / totals[:, None]
        return batch_multinomial_counts(totals, alpha, rng, self.name)

    def agent_step(
        self,
        opinions: np.ndarray,
        graph: Graph,
        rng: np.random.Generator,
    ) -> np.ndarray:
        return opinions[graph.sample_neighbors(rng, 1)[:, 0]]

    def agent_step_batch(
        self,
        opinions: np.ndarray,
        graph: Graph,
        rng: np.random.Generator,
    ) -> np.ndarray:
        """All R replicas via one batched sample-and-gather per chunk.

        Replica rows are chunked so the dominant ``(rows, n)`` index
        scratch stays under ``batch_element_budget`` elements; chunking
        changes memory, call granularity and raw-stream consumption —
        realisations differ across budgets, the sampled law never does
        (KS-tested).
        """
        opinions = np.ascontiguousarray(opinions)
        num_rows, n = opinions.shape
        out = np.empty_like(opinions)
        for start, stop in iter_row_chunks(
            num_rows, n, self.batch_element_budget
        ):
            sample_and_gather_neighbor_opinions_batch(
                opinions[start:stop],
                graph,
                1,
                rng,
                out=out[None, start:stop],
            )
        return out

    def single_vertex_law(
        self, alpha: np.ndarray, current_opinion: int
    ) -> np.ndarray:
        return np.asarray(alpha, dtype=np.float64).copy()

    def async_population_step_batch(
        self, counts: np.ndarray, rng: np.random.Generator
    ) -> np.ndarray:
        """One asynchronous tick across all R replica rows at once.

        Per row, the updating vertex and the neighbour it copies are
        two i.i.d. uniformly random vertices — one integer-exact
        two-sample draw from the row's counts.
        """
        counts = np.asarray(counts, dtype=np.int64)
        pair = sample_holders_batch(counts, 2, rng)
        rows = np.arange(counts.shape[0])
        counts[rows, pair[:, 0]] -= 1
        counts[rows, pair[:, 1]] += 1
        return counts

    def expected_alpha_next(self, alpha: np.ndarray) -> np.ndarray:
        """The voter fractions are a martingale: ``E[alpha_t] = alpha``."""
        return np.asarray(alpha, dtype=np.float64).copy()
