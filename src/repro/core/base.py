"""Dynamics interface.

A *dynamics* (paper Definition 3.1) is the per-round update rule of a
synchronous consensus process.  Every dynamics in this library implements
three views of the same Markov chain:

``population_step``
    The exact count-vector transition on the complete graph with
    self-loops.  Because vertices there are exchangeable and update
    independently given the round-(t-1) configuration, the count vector is
    a sufficient statistic and one round can be sampled *exactly* from
    closed-form per-vertex laws (paper eqs. (5) and (6)) — typically a
    handful of multinomial draws, independent of ``n``.  This is what
    makes ``n = 10^7`` experiments laptop-feasible.

``agent_step``
    The per-vertex transition on an arbitrary
    :class:`~repro.graphs.base.Graph`.  O(n) per round, but the only
    option off the complete graph.  On the complete graph it must agree
    in distribution with ``population_step`` (tests enforce this).

``async_population_step``
    One tick of the asynchronous variant ([CMRSS25]): a single uniformly
    random vertex re-samples its opinion.  ``n`` async ticks correspond to
    one synchronous round.

Subclasses additionally expose ``expected_alpha_next`` so that the theory
module and tests can check the one-step mean formulas of Lemma 4.1 against
Monte-Carlo estimates.
"""

from __future__ import annotations

import abc

import numpy as np

from repro.state import validate_counts
from repro.errors import StateError
from repro.graphs.base import Graph

__all__ = [
    "Dynamics",
    "batch_multinomial_counts",
    "multinomial_counts",
    "sample_opinions_from_counts",
]


def multinomial_counts(
    n: int,
    probabilities: np.ndarray,
    rng: np.random.Generator,
    dynamics: str = "",
) -> np.ndarray:
    """Draw ``Multinomial(n, probabilities)`` with defensive normalisation.

    Floating-point round-off can leave ``probabilities`` summing to
    ``1 ± 1e-16``; numpy's ``multinomial`` rejects sums above 1, so we
    renormalise.  A sum that is materially different from 1 indicates a
    bug in the caller's transition law and raises; pass ``dynamics`` (the
    caller's name) so the error pinpoints which transition law drifted.
    """
    p = np.asarray(probabilities, dtype=np.float64)
    total = p.sum()
    if not 0.999999 < total < 1.000001:
        raise StateError(
            f"transition probabilities sum to {total!r}, expected 1 "
            f"(probability vector shape {p.shape}"
            + (f", dynamics {dynamics!r})" if dynamics else ")")
        )
    return rng.multinomial(n, p / total).astype(np.int64)


def batch_multinomial_counts(
    n: np.ndarray,
    probabilities: np.ndarray,
    rng: np.random.Generator,
    dynamics: str = "",
) -> np.ndarray:
    """Row-wise ``Multinomial(n[r], probabilities[r])`` for R replicas.

    The batched counterpart of :func:`multinomial_counts`: ``n`` has shape
    ``(R,)`` and ``probabilities`` shape ``(R, k)``; one vectorised call
    samples all R rows (numpy broadcasts ``n`` against the leading axes of
    the probability matrix).  Rows are renormalised defensively; a row
    materially off 1 raises a :class:`~repro.errors.StateError` naming the
    offending row, the matrix shape and the dynamics.
    """
    p = np.asarray(probabilities, dtype=np.float64)
    totals = p.sum(axis=-1)
    bad = ~((totals > 0.999999) & (totals < 1.000001))
    if bad.any():
        row = int(np.flatnonzero(bad)[0])
        raise StateError(
            f"transition probabilities in replica row {row} sum to "
            f"{totals[row]!r}, expected 1 (probability matrix shape "
            f"{p.shape}" + (f", dynamics {dynamics!r})" if dynamics else ")")
        )
    return rng.multinomial(
        np.asarray(n), p / totals[..., None]
    ).astype(np.int64)


def sample_opinions_from_counts(
    counts: np.ndarray,
    size: tuple[int, ...] | int,
    rng: np.random.Generator,
) -> np.ndarray:
    """Sample i.i.d. opinions of uniformly random vertices.

    On the complete graph with self-loops, "the opinion of a random
    neighbour" is exactly an i.i.d. draw from ``alpha = counts / n``;
    all population-level agent-style sampling funnels through here.
    """
    alpha = np.asarray(counts, dtype=np.float64)
    alpha = alpha / alpha.sum()
    return rng.choice(alpha.size, size=size, p=alpha)


class Dynamics(abc.ABC):
    """Abstract synchronous consensus dynamics."""

    #: Short machine name used by the registry and experiment tables.
    name: str = "abstract"

    #: Number of neighbour samples each vertex draws per synchronous round
    #: (3 for 3-Majority, 2 for 2-Choices, h for h-Majority, 1 for Voter).
    samples_per_round: int = 0

    # ------------------------------------------------------------------
    # Exact population-level chain (complete graph with self-loops)
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def population_step(
        self, counts: np.ndarray, rng: np.random.Generator
    ) -> np.ndarray:
        """Sample the next count vector exactly.

        ``counts`` is a validated int64 vector; implementations must
        return a fresh int64 vector of the same length and total mass.
        """

    def population_step_batch(
        self, counts: np.ndarray, rng: np.random.Generator
    ) -> np.ndarray:
        """Advance R independent replicas one round each.

        ``counts`` is an ``(R, k)`` int64 matrix, one replica per row;
        the result has the same shape with every row's mass conserved.
        The base implementation loops :meth:`population_step` over rows
        (correct for any dynamics); 3-Majority, 2-Choices and Voter
        override it with single-call vectorised samplers, which is what
        makes :class:`~repro.engine.batch.BatchPopulationEngine` fast.
        """
        counts = np.asarray(counts, dtype=np.int64)
        return np.stack(
            [self.population_step(row, rng) for row in counts]
        )

    # ------------------------------------------------------------------
    # Agent-level chain (any graph)
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def agent_step(
        self,
        opinions: np.ndarray,
        graph: Graph,
        rng: np.random.Generator,
    ) -> np.ndarray:
        """Sample every vertex's next opinion simultaneously."""

    # ------------------------------------------------------------------
    # Asynchronous chain (complete graph with self-loops)
    # ------------------------------------------------------------------
    def async_population_step(
        self, counts: np.ndarray, rng: np.random.Generator
    ) -> np.ndarray:
        """One asynchronous tick: a single random vertex updates.

        The default implementation draws the updating vertex's current
        opinion from ``alpha`` and its new opinion from
        :meth:`single_vertex_law`, then moves one unit of mass.  The input
        array is modified in place and returned (hot path for ~n^1.5 tick
        experiments).
        """
        n = int(counts.sum())
        alpha = counts / n
        old = int(rng.choice(counts.size, p=alpha))
        law = self.single_vertex_law(alpha, old)
        new = int(rng.choice(counts.size, p=law))
        if new != old:
            counts[old] -= 1
            counts[new] += 1
        return counts

    def single_vertex_law(
        self, alpha: np.ndarray, current_opinion: int
    ) -> np.ndarray:
        """Distribution of one vertex's next opinion given ``alpha``.

        Subclasses for which the law has a closed form (eqs. (5), (6))
        override this; the base class refuses so that dynamics without a
        closed form fail loudly rather than silently approximating.
        """
        raise NotImplementedError(
            f"{type(self).__name__} does not define a closed-form "
            "single-vertex law"
        )

    # ------------------------------------------------------------------
    # Theory hooks
    # ------------------------------------------------------------------
    def expected_alpha_next(self, alpha: np.ndarray) -> np.ndarray:
        """``E[alpha_t | alpha_{t-1}]`` where available (Lemma 4.1(i)).

        Both 3-Majority and 2-Choices share the closed form
        ``alpha * (1 + alpha - gamma)``; other dynamics override or
        inherit this default NotImplementedError.
        """
        raise NotImplementedError(
            f"{type(self).__name__} does not define expected_alpha_next"
        )

    # ------------------------------------------------------------------
    # Convenience
    # ------------------------------------------------------------------
    def validated_population_step(
        self, counts: np.ndarray, rng: np.random.Generator
    ) -> np.ndarray:
        """Population step with input/output validation (slow path).

        The engines validate once up front and then call
        :meth:`population_step` directly; this wrapper exists for ad-hoc
        interactive use.
        """
        checked = validate_counts(counts)
        result = self.population_step(checked, rng)
        return validate_counts(result, n=int(checked.sum()))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}()"
