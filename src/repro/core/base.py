"""Dynamics interface.

A *dynamics* (paper Definition 3.1) is the per-round update rule of a
synchronous consensus process.  Every dynamics in this library implements
three views of the same Markov chain:

``population_step``
    The exact count-vector transition on the complete graph with
    self-loops.  Because vertices there are exchangeable and update
    independently given the round-(t-1) configuration, the count vector is
    a sufficient statistic and one round can be sampled *exactly* from
    closed-form per-vertex laws (paper eqs. (5) and (6)) — typically a
    handful of multinomial draws, independent of ``n``.  This is what
    makes ``n = 10^7`` experiments laptop-feasible.

``agent_step``
    The per-vertex transition on an arbitrary
    :class:`~repro.graphs.base.Graph`.  O(n) per round, but the only
    option off the complete graph.  On the complete graph it must agree
    in distribution with ``population_step`` (tests enforce this).

``async_population_step``
    One tick of the asynchronous variant ([CMRSS25]): a single uniformly
    random vertex re-samples its opinion.  ``n`` async ticks correspond to
    one synchronous round.

Subclasses additionally expose ``expected_alpha_next`` so that the theory
module and tests can check the one-step mean formulas of Lemma 4.1 against
Monte-Carlo estimates.

Compute backends
----------------
The measured hot loops in this module (``batch_categorical``,
``sample_holders_batch`` and the fused neighbour sample+gather helper)
consult :func:`repro.backends.active_backend` for a named kernel before
running their inline NumPy code.  The inline code *is* the ``numpy``
backend — the reference implementation every accelerated kernel is
tested against — so dispatch falls through to it whenever the active
backend does not accelerate the kernel in question.
"""

from __future__ import annotations

import abc

import numpy as np

from repro.backends import active_backend, backend_kernel, quarantine_kernel
from repro.state import validate_counts
from repro.errors import StateError
from repro.graphs.base import Graph

__all__ = [
    "BATCH_ELEMENT_BUDGET",
    "Dynamics",
    "batch_binomial",
    "batch_categorical",
    "batch_multinomial_counts",
    "gather_neighbor_opinions_batch",
    "iter_row_chunks",
    "multinomial_counts",
    "sample_and_gather_neighbor_opinions_batch",
    "sample_holders_batch",
    "sample_opinions_from_counts",
    "sample_opinions_from_counts_batch",
]

#: Default per-call scratch budget (array *elements*, not bytes) for the
#: batched samplers whose intermediates scale with more than ``R * k`` —
#: h-Majority's ``(R, n*h)`` shared-sample matrix and the Median rule's
#: ``(R, k, k)`` group-law tensor.  Dynamics chunk their replica rows so
#: no *single* scratch array outgrows the budget (see
#: :func:`iter_row_chunks`); a handful of budget-shaped temporaries
#: coexist per chunk (sample labels, counting/jitter buffers, law
#: copies), so size the knob for peak memory at a few times the budget
#: in bytes.  The default of 2**22 elements (~32 MiB at int64) also
#: keeps the per-chunk working set near cache-resident — measured on the
#: h-Majority counting pass, per-element cost is flat up to ~4M elements
#: and roughly quadruples by 16M, so bigger is not faster.  Override per
#: instance via ``Dynamics.batch_element_budget`` or the batch engine's
#: ``element_budget`` knob.
BATCH_ELEMENT_BUDGET = 1 << 22


def multinomial_counts(
    n: int,
    probabilities: np.ndarray,
    rng: np.random.Generator,
    dynamics: str = "",
) -> np.ndarray:
    """Draw ``Multinomial(n, probabilities)`` with defensive normalisation.

    Floating-point round-off can leave ``probabilities`` summing to
    ``1 ± 1e-16``; numpy's ``multinomial`` rejects sums above 1, so we
    renormalise.  A sum that is materially different from 1 indicates a
    bug in the caller's transition law and raises; pass ``dynamics`` (the
    caller's name) so the error pinpoints which transition law drifted.
    """
    p = np.asarray(probabilities, dtype=np.float64)
    total = p.sum()
    if not 0.999999 < total < 1.000001:
        raise StateError(
            f"transition probabilities sum to {total!r}, expected 1 "
            f"(probability vector shape {p.shape}"
            + (f", dynamics {dynamics!r})" if dynamics else ")")
        )
    return rng.multinomial(n, p / total).astype(np.int64)


def batch_multinomial_counts(
    n: np.ndarray,
    probabilities: np.ndarray,
    rng: np.random.Generator,
    dynamics: str = "",
) -> np.ndarray:
    """Row-wise ``Multinomial(n[r], probabilities[r])`` for R replicas.

    The batched counterpart of :func:`multinomial_counts`: ``n`` has shape
    ``(R,)`` and ``probabilities`` shape ``(R, k)``; one vectorised call
    samples all R rows (numpy broadcasts ``n`` against the leading axes of
    the probability matrix).  Rows are renormalised defensively; a row
    materially off 1 raises a :class:`~repro.errors.StateError` naming the
    offending row, the matrix shape and the dynamics.
    """
    p = np.asarray(probabilities, dtype=np.float64)
    totals = p.sum(axis=-1)
    bad = ~((totals > 0.999999) & (totals < 1.000001))
    if bad.any():
        row = int(np.flatnonzero(bad)[0])
        raise StateError(
            f"transition probabilities in replica row {row} sum to "
            f"{totals[row]!r}, expected 1 (probability matrix shape "
            f"{p.shape}" + (f", dynamics {dynamics!r})" if dynamics else ")")
        )
    return rng.multinomial(
        np.asarray(n), p / totals[..., None]
    ).astype(np.int64)


def batch_binomial(
    counts: np.ndarray,
    probabilities: np.ndarray,
    rng: np.random.Generator,
    dynamics: str = "",
) -> np.ndarray:
    """Element-wise ``Binomial(counts, probabilities)`` with defensive clipping.

    The batched counterpart of ``rng.binomial`` for transition laws built
    from count ratios: probabilities like ``alpha_i + alpha_u`` can land a
    few ulp outside ``[0, 1]`` (numpy's binomial rejects them outright),
    so values within round-off of the boundary are clipped.  A probability
    materially outside ``[0, 1]`` indicates a bug in the caller's law and
    raises a :class:`~repro.errors.StateError` naming the dynamics.
    """
    p = np.asarray(probabilities, dtype=np.float64)
    bad = (p < -1e-6) | (p > 1.000001)
    if bad.any():
        flat = int(np.flatnonzero(bad.ravel())[0])
        raise StateError(
            f"binomial probability {p.ravel()[flat]!r} at flat index "
            f"{flat} lies outside [0, 1] (probability array shape "
            f"{p.shape}" + (f", dynamics {dynamics!r})" if dynamics else ")")
        )
    return rng.binomial(
        np.asarray(counts), np.clip(p, 0.0, 1.0)
    ).astype(np.int64)


def iter_row_chunks(num_rows: int, elements_per_row: int, element_budget: int):
    """Yield ``(start, stop)`` row slices under a scratch-element budget.

    Shared memory guard for the batched samplers: a dynamics whose batch
    step's *dominant* scratch array holds ``elements_per_row`` elements
    per replica row processes at most ``element_budget //
    elements_per_row`` rows per vectorised call (always at least one, so
    a single huge row still runs — the guard bounds *width*, it never
    refuses work).
    """
    rows_per_chunk = max(1, element_budget // max(1, elements_per_row))
    for start in range(0, num_rows, rows_per_chunk):
        yield start, min(start + rows_per_chunk, num_rows)


def sample_opinions_from_counts(
    counts: np.ndarray,
    size: tuple[int, ...] | int,
    rng: np.random.Generator,
) -> np.ndarray:
    """Sample i.i.d. opinions of uniformly random vertices.

    On the complete graph with self-loops, "the opinion of a random
    neighbour" is exactly an i.i.d. draw from ``alpha = counts / n``;
    all population-level agent-style sampling funnels through here.
    """
    alpha = np.asarray(counts, dtype=np.float64)
    alpha = alpha / alpha.sum()
    return rng.choice(alpha.size, size=size, p=alpha)


def sample_opinions_from_counts_batch(
    counts: np.ndarray,
    num_samples: int,
    rng: np.random.Generator,
    dtype: np.dtype | type = np.int64,
) -> np.ndarray:
    """Row-wise i.i.d. opinion samples over an ``(R, k)`` count matrix.

    Returns an ``(R, num_samples)`` matrix whose row ``r`` holds
    i.i.d. draws from ``counts[r] / counts[r].sum()`` — the batched
    counterpart of :func:`sample_opinions_from_counts`, with no per-row
    Python loop.  Exploits exchangeability: per row, the *multiset* of
    sampled opinions is one multinomial draw; laying it out as label
    blocks and shuffling within the row (``rng.permuted``) recovers an
    i.i.d. sequence, because a uniformly random arrangement of a
    multinomially drawn multiset has exactly the i.i.d. law.

    ``dtype`` sets the label dtype (default int64); the shuffle is
    bandwidth-bound, so bulk callers that can live with int32 labels
    (any ``k < 2**31``) save real time by narrowing it.  Keep total
    call size near :data:`BATCH_ELEMENT_BUDGET` elements — the per-row
    shuffle is cache-resident there and several times slower per
    element on far larger calls.
    """
    counts = np.asarray(counts, dtype=np.int64)
    num_rows, k = counts.shape
    totals = counts.sum(axis=1)
    alpha = counts / totals[:, None]
    per_label = batch_multinomial_counts(
        np.full(num_rows, num_samples), alpha, rng
    )
    labels = np.repeat(
        np.tile(np.arange(k, dtype=dtype), num_rows),
        per_label.reshape(-1),
    )
    return rng.permuted(labels.reshape(num_rows, num_samples), axis=1)


def sample_holders_batch(
    counts: np.ndarray,
    num_samples: int,
    rng: np.random.Generator,
) -> np.ndarray:
    """Opinions of uniformly random vertices, one draw set per row.

    Returns an ``(R, num_samples)`` label matrix whose row ``r`` holds
    i.i.d. opinions of uniformly random vertices of replica ``r`` — the
    few-samples counterpart of :func:`sample_opinions_from_counts_batch`
    used by the per-tick asynchronous batch steps, where each row needs
    only a handful of draws and a multinomial + shuffle would be
    overkill.

    Sampling is integer-exact (inverse CDF over the *integer* cumulative
    counts): a label with count 0 has an empty cdf step and can never be
    selected, so draws meant to pick an existing vertex (e.g. the
    updating vertex of an asynchronous tick) never land on a dead
    opinion — which matters, because decrementing a zero count would
    corrupt the configuration.

    Accelerated by the active backend's ``sample_holders`` kernel when
    one is registered (bitwise-identical: the bounded draws come from
    the same ``Generator`` call either way).
    """
    counts = np.asarray(counts, dtype=np.int64)
    kernel = backend_kernel("sample_holders")
    if kernel is not None:
        try:
            return kernel(counts, num_samples, rng)
        except Exception as exc:
            # A kernel dying at runtime degrades to the reference path
            # below instead of killing the run (warns once, and the
            # kernel stays quarantined for the rest of the process).
            quarantine_kernel(active_backend(), "sample_holders", exc)
    cdf = counts.cumsum(axis=1)
    u = rng.integers(
        0, cdf[:, -1:], size=(counts.shape[0], num_samples)
    )
    # searchsorted(cdf, u, side="right") per row, vectorised: label j is
    # selected iff cdf[j-1] <= u < cdf[j], i.e. exactly u falls in j's
    # block of the 0..n-1 vertex range.
    return (cdf[:, None, :] <= u[:, :, None]).sum(axis=2)


def batch_categorical(
    probabilities: np.ndarray,
    rng: np.random.Generator,
    dynamics: str = "",
) -> np.ndarray:
    """One categorical draw per row of an ``(R, k)`` probability matrix.

    The single-draw counterpart of :func:`batch_multinomial_counts`
    (same defensive row-sum validation, same error reporting), used by
    the asynchronous batch steps to sample each replica's updating
    vertex's *next* opinion from its closed-form law in one vectorised
    inverse-CDF pass.  Rows are renormalised implicitly: the uniform
    variate is scaled by the row total, so round-off in the law never
    biases the draw.
    """
    p = np.asarray(probabilities, dtype=np.float64)
    totals = p.sum(axis=1)
    bad = ~((totals > 0.999999) & (totals < 1.000001))
    if bad.any():
        row = int(np.flatnonzero(bad)[0])
        raise StateError(
            f"transition probabilities in replica row {row} sum to "
            f"{totals[row]!r}, expected 1 (probability matrix shape "
            f"{p.shape}" + (f", dynamics {dynamics!r})" if dynamics else ")")
        )
    kernel = backend_kernel("batch_categorical")
    if kernel is not None:
        # Same single uniform per row and the same inverse-CDF rule, so
        # accelerated and reference draws coincide for a given state.
        try:
            return kernel(p, rng)
        except Exception as exc:
            quarantine_kernel(active_backend(), "batch_categorical", exc)
    cdf = np.cumsum(p, axis=1)
    # rng.random() < 1 strictly, so u < cdf[:, -1] and the index stays
    # in range without clipping.
    u = rng.random(p.shape[0]) * cdf[:, -1]
    return (cdf <= u[:, None]).sum(axis=1)


def gather_neighbor_opinions_batch(
    opinions: np.ndarray,
    neighbor_ids: np.ndarray,
    out: np.ndarray | None = None,
) -> np.ndarray:
    """Look up sampled neighbours' opinions across R replica rows.

    ``opinions`` is a C-contiguous ``(R, n)`` opinion matrix and
    ``neighbor_ids`` a ``(samples, R, n)`` tensor of vertex ids (the
    layout produced by :meth:`repro.graphs.base.Graph.
    sample_neighbors_batch`).  Returns the ``(samples, R, n)`` tensor of
    the corresponding opinions, in ``opinions``' dtype — the shared
    gather behind every vectorised ``agent_step_batch``.  ``out``
    (same shape and dtype) lets single-sample callers like the Voter
    step land the result directly in their output block instead of
    paying an extra copy.

    Implementation note: each replica row is offset into the flattened
    opinion matrix and resolved with a single bounds-check-free
    ``np.take`` (ids are valid vertex indices by construction, so
    ``mode="clip"`` never clips); one fused take measures several times
    faster than per-sample fancy indexing.
    """
    num_rows, n = opinions.shape
    row_base = (np.arange(num_rows, dtype=np.intp) * n)[:, None]
    flat_index = np.add(neighbor_ids, row_base, casting="unsafe")
    return np.take(
        opinions.reshape(-1), flat_index, out=out, mode="clip"
    )


def sample_and_gather_neighbor_opinions_batch(
    opinions: np.ndarray,
    graph: Graph,
    num_samples: int,
    rng: np.random.Generator,
    out: np.ndarray | None = None,
) -> np.ndarray:
    """Sampled neighbours' opinions for every vertex of every replica.

    The fused front half of every vectorised ``agent_step_batch``:
    equivalent to ``graph.sample_neighbors_batch(rng, num_samples,
    rows)`` followed by :func:`gather_neighbor_opinions_batch`, returning
    the ``(num_samples, rows, n)`` opinion tensor directly.

    When the active backend provides a ``csr_sample_gather`` kernel and
    the graph exposes CSR kernel tables (see
    :meth:`repro.graphs.base.AdjacencyGraph.csr_kernel_tables`), the
    sample and the gather run as one compiled pass that never
    materialises the ``(num_samples, rows, n)`` *index* tensor — the
    measured agent-batch hot loop.  Otherwise it falls through to the
    two-step reference path, so graphs without CSR tables (e.g. the
    closed-form complete graph) and the ``numpy`` backend are
    unaffected.  The accelerated path consumes a different raw RNG
    stream, so it matches the reference in distribution, not bitwise.
    """
    opinions = np.ascontiguousarray(opinions)
    kernel = backend_kernel("csr_sample_gather")
    if kernel is not None:
        tables = getattr(graph, "csr_kernel_tables", None)
        if tables is not None:
            indptr, indices = tables()
            try:
                return kernel(
                    indptr, indices, opinions, num_samples, rng, out
                )
            except Exception as exc:
                quarantine_kernel(
                    active_backend(), "csr_sample_gather", exc
                )
    ids = graph.sample_neighbors_batch(rng, num_samples, opinions.shape[0])
    return gather_neighbor_opinions_batch(opinions, ids, out=out)


class Dynamics(abc.ABC):
    """Abstract synchronous consensus dynamics."""

    #: Short machine name used by the registry and experiment tables.
    name: str = "abstract"

    #: Number of neighbour samples each vertex draws per synchronous round
    #: (3 for 3-Majority, 2 for 2-Choices, h for h-Majority, 1 for Voter).
    samples_per_round: int = 0

    #: Scratch-element budget consulted by batch steps whose intermediates
    #: outgrow ``R * k`` (h-Majority, Median); see
    #: :data:`BATCH_ELEMENT_BUDGET` and :func:`iter_row_chunks`.  The
    #: batch engine's ``element_budget`` knob overrides it per instance.
    batch_element_budget: int = BATCH_ELEMENT_BUDGET

    # ------------------------------------------------------------------
    # Exact population-level chain (complete graph with self-loops)
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def population_step(
        self, counts: np.ndarray, rng: np.random.Generator
    ) -> np.ndarray:
        """Sample the next count vector exactly.

        ``counts`` is a validated int64 vector; implementations must
        return a fresh int64 vector of the same length and total mass.
        """

    def population_step_batch(
        self, counts: np.ndarray, rng: np.random.Generator
    ) -> np.ndarray:
        """Advance R independent replicas one round each.

        ``counts`` is an ``(R, k)`` int64 matrix, one replica per row;
        the result has the same shape with every row's mass conserved.
        The base implementation loops :meth:`population_step` over rows
        (correct for any dynamics, no speedup).  Every dynamics in the
        catalogue overrides it with a vectorised sampler — 3-Majority and
        Voter with one batched multinomial, 2-Choices and Undecided-State
        with a binomial + multinomial pair, the Median rule by mixing
        per-row closed-form group laws into one batched multinomial, and
        h-Majority with a chunked shared-sample path — which is what
        makes :class:`~repro.engine.batch.BatchPopulationEngine` fast
        (``benchmarks/bench_batch_dynamics.py`` guards the overrides and
        tracks the per-dynamics speedups).
        """
        counts = np.asarray(counts, dtype=np.int64)
        return np.stack(
            [self.population_step(row, rng) for row in counts]
        )

    def is_consensus_counts(self, counts: np.ndarray) -> bool:
        """Consensus check for one count vector, per this dynamics.

        The default — one opinion holds the entire mass — is right for
        every dynamics whose labels are all ordinary opinions.  Dynamics
        with auxiliary labels override it (with
        :meth:`consensus_mask_batch`, its row-wise counterpart):
        Undecided-State only counts a *decided* opinion holding
        everything.  The engines' run loops consult this, so the label
        convention travels with the dynamics across every engine.
        """
        counts = np.asarray(counts)
        return bool(counts.max() == counts.sum())

    def consensus_mask_batch(self, counts: np.ndarray) -> np.ndarray:
        """Per-row consensus indicator over an ``(R, k)`` count matrix.

        Row-wise counterpart of :meth:`is_consensus_counts`; override
        the two together so the batch engine and the sequential engines
        stop under the same convention.
        """
        counts = np.asarray(counts)
        return counts.max(axis=1) == counts.sum(axis=1)

    # ------------------------------------------------------------------
    # Agent-level chain (any graph)
    # ------------------------------------------------------------------
    def bind_opinion_space(self, num_opinions: int) -> None:
        """Hook: an engine announces its opinion-space size before running.

        Most dynamics need nothing beyond the labels they see and ignore
        this.  Dynamics whose semantics depend on the label layout
        override it — Undecided-State derives its undecided label
        (``num_opinions - 1``) here, so a fully decided agent start is
        interpreted correctly.  :class:`~repro.engine.agent.AgentEngine`
        calls this at construction with its ``num_opinions``.
        """

    @abc.abstractmethod
    def agent_step(
        self,
        opinions: np.ndarray,
        graph: Graph,
        rng: np.random.Generator,
    ) -> np.ndarray:
        """Sample every vertex's next opinion simultaneously."""

    def agent_step_batch(
        self,
        opinions: np.ndarray,
        graph: Graph,
        rng: np.random.Generator,
    ) -> np.ndarray:
        """Advance R replicas of the agent-level chain one round each.

        ``opinions`` is an ``(R, n)`` integer matrix, one replica of
        per-vertex opinions per row, all sharing ``graph``; the result
        has the same shape and dtype.  The base implementation loops
        :meth:`agent_step` over rows (correct for any dynamics, no
        speedup).  The pull-based paper dynamics (3-Majority, 2-Choices,
        Voter) override it with single-pass vectorised samplers built on
        :meth:`~repro.graphs.base.Graph.sample_neighbors_batch` and
        :func:`gather_neighbor_opinions_batch`, which is what makes
        :class:`~repro.engine.agent_batch.BatchAgentEngine` fast
        (``benchmarks/bench_agent_batch.py`` guards the overrides and
        tracks the speedups).
        """
        opinions = np.asarray(opinions)
        return np.stack(
            [self.agent_step(row, graph, rng) for row in opinions]
        )

    def consensus_mask_agents(self, opinions: np.ndarray) -> np.ndarray:
        """Per-row consensus indicator over an ``(R, n)`` opinion matrix.

        Agent-level counterpart of :meth:`consensus_mask_batch`, used by
        the batched graph engine so the label convention travels with
        the dynamics without materialising count vectors every round.
        The default — all vertices share one label — matches the generic
        count-level rule; Undecided-State overrides it (a row uniform on
        the undecided label is absorbing but *not* consensus).
        """
        opinions = np.asarray(opinions)
        return (opinions == opinions[:, :1]).all(axis=1)

    # ------------------------------------------------------------------
    # Asynchronous chain (complete graph with self-loops)
    # ------------------------------------------------------------------
    def async_population_step(
        self, counts: np.ndarray, rng: np.random.Generator
    ) -> np.ndarray:
        """One asynchronous tick: a single random vertex updates.

        The default implementation draws the updating vertex's current
        opinion from ``alpha`` and its new opinion from
        :meth:`single_vertex_law`, then moves one unit of mass.  The input
        array is modified in place and returned (hot path for ~n^1.5 tick
        experiments).
        """
        n = int(counts.sum())
        alpha = counts / n
        old = int(rng.choice(counts.size, p=alpha))
        law = self.single_vertex_law(alpha, old)
        new = int(rng.choice(counts.size, p=law))
        if new != old:
            counts[old] -= 1
            counts[new] += 1
        return counts

    def async_population_step_batch(
        self, counts: np.ndarray, rng: np.random.Generator
    ) -> np.ndarray:
        """One asynchronous tick for each of R independent replicas.

        ``counts`` is an ``(R, k)`` int64 matrix, one replica per row;
        in every row a single uniformly random vertex re-samples its
        opinion (the same law as :meth:`async_population_step`, applied
        row-wise).  The matrix is updated in place and returned — the
        per-tick hot path of
        :class:`~repro.engine.async_batch.AsyncBatchPopulationEngine`.

        The base implementation loops :meth:`async_population_step`
        over rows (correct for any dynamics with a single-vertex law,
        no speedup).  Every catalogued dynamics overrides it with a
        vectorised sampler built on :func:`sample_holders_batch` (the
        updating vertex and any sampled neighbours are integer-exact
        draws from each row's counts) plus either the combination rule
        applied label-wise or one :func:`batch_categorical` draw from
        the closed-form law; ``benchmarks/bench_async_batch.py`` guards
        the overrides and tracks the speedup.
        """
        counts = np.asarray(counts, dtype=np.int64)
        for row in counts:
            self.async_population_step(row, rng)
        return counts

    def single_vertex_law(
        self, alpha: np.ndarray, current_opinion: int
    ) -> np.ndarray:
        """Distribution of one vertex's next opinion given ``alpha``.

        Subclasses for which the law has a closed form (eqs. (5), (6))
        override this; the base class refuses so that dynamics without a
        closed form fail loudly rather than silently approximating.
        """
        raise NotImplementedError(
            f"{type(self).__name__} does not define a closed-form "
            "single-vertex law"
        )

    # ------------------------------------------------------------------
    # Theory hooks
    # ------------------------------------------------------------------
    def expected_alpha_next(self, alpha: np.ndarray) -> np.ndarray:
        """``E[alpha_t | alpha_{t-1}]`` where available (Lemma 4.1(i)).

        Both 3-Majority and 2-Choices share the closed form
        ``alpha * (1 + alpha - gamma)``; other dynamics override or
        inherit this default NotImplementedError.
        """
        raise NotImplementedError(
            f"{type(self).__name__} does not define expected_alpha_next"
        )

    # ------------------------------------------------------------------
    # Convenience
    # ------------------------------------------------------------------
    def validated_population_step(
        self, counts: np.ndarray, rng: np.random.Generator
    ) -> np.ndarray:
        """Population step with input/output validation (slow path).

        The engines validate once up front and then call
        :meth:`population_step` directly; this wrapper exists for ad-hoc
        interactive use.
        """
        checked = validate_counts(counts)
        result = self.population_step(checked, rng)
        return validate_counts(result, n=int(checked.sum()))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}()"
