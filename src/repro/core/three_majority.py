"""The 3-Majority dynamics (paper Definition 3.1).

Each vertex ``v`` picks three uniformly random neighbours ``w1, w2, w3``
(with replacement, self-loops included).  If ``opn(w1) == opn(w2)`` the
vertex adopts that opinion, otherwise it adopts ``opn(w3)``.  This
"first-two-else-third" formulation is *exactly* majority-of-three with a
uniformly random tie-break (checked in the test suite): when two of the
three samples agree that opinion wins, and when all three differ the
adopted opinion is a uniform sample among the three.

On the complete graph with self-loops the per-vertex law is (paper eq. (5))

    P[opn_t(v) = i]  =  alpha_i^2 + (1 - gamma) * alpha_i
                     =  alpha_i * (1 + alpha_i - gamma),

independent of ``v``'s current opinion, so a synchronous round of the
whole system is a single draw ``Multinomial(n, p)`` — the population step
is O(#alive opinions) regardless of ``n``.

Main theorem being reproduced: consensus time ``~Theta(min{k, sqrt(n)})``
(Theorem 1.1).
"""

from __future__ import annotations

import numpy as np

from repro.core.base import (
    Dynamics,
    batch_categorical,
    batch_multinomial_counts,
    iter_row_chunks,
    multinomial_counts,
    sample_and_gather_neighbor_opinions_batch,
    sample_holders_batch,
)
from repro.graphs.base import Graph

__all__ = ["ThreeMajority", "three_majority_law"]


def three_majority_law(alpha: np.ndarray) -> np.ndarray:
    """The common next-opinion distribution, paper eq. (5).

    ``p_i = alpha_i (1 + alpha_i - gamma)`` with
    ``gamma = sum_i alpha_i^2``.  Sums to 1 because
    ``sum alpha_i + sum alpha_i^2 - gamma * sum alpha_i = 1``.
    """
    alpha = np.asarray(alpha, dtype=np.float64)
    gamma = float(np.dot(alpha, alpha))
    return alpha * (1.0 + alpha - gamma)


class ThreeMajority(Dynamics):
    """Synchronous 3-Majority on a complete graph or arbitrary graph."""

    name = "3-majority"
    samples_per_round = 3

    def population_step(
        self, counts: np.ndarray, rng: np.random.Generator
    ) -> np.ndarray:
        n = int(counts.sum())
        alive = np.flatnonzero(counts)
        if alive.size == 1:
            return counts.copy()
        # Work on the alive support only: dead opinions have p_i = 0 and
        # can never revive, so dropping them is exact and keeps late
        # rounds (few survivors) O(1).
        alpha = counts[alive] / n
        gamma = float(np.dot(alpha, alpha))
        law = alpha * (1.0 + alpha - gamma)
        new_counts = np.zeros_like(counts)
        new_counts[alive] = multinomial_counts(n, law, rng, self.name)
        return new_counts

    def population_step_batch(
        self, counts: np.ndarray, rng: np.random.Generator
    ) -> np.ndarray:
        """All R replicas in one multinomial call.

        Dead opinions keep probability 0, so the full-width law is exact
        without per-replica support tracking; rows already at consensus
        are fixed points of the law (the winner has probability 1).
        """
        counts = np.asarray(counts, dtype=np.int64)
        totals = counts.sum(axis=1)
        alpha = counts / totals[:, None]
        gamma = np.einsum("rk,rk->r", alpha, alpha)
        law = alpha * (1.0 + alpha - gamma[:, None])
        return batch_multinomial_counts(totals, law, rng, self.name)

    def agent_step(
        self,
        opinions: np.ndarray,
        graph: Graph,
        rng: np.random.Generator,
    ) -> np.ndarray:
        samples = graph.sample_neighbors(rng, 3)
        w1 = opinions[samples[:, 0]]
        w2 = opinions[samples[:, 1]]
        w3 = opinions[samples[:, 2]]
        return np.where(w1 == w2, w1, w3)

    def agent_step_batch(
        self,
        opinions: np.ndarray,
        graph: Graph,
        rng: np.random.Generator,
    ) -> np.ndarray:
        """All R replicas: batched triple sample, gather, combine.

        The first-two-else-third rule vectorises directly over the
        ``(3, rows, n)`` sample planes; replica rows are chunked so the
        dominant ``3 n`` per-row index scratch stays under
        ``batch_element_budget`` elements (different budgets consume
        the stream differently, but always sample the same law).
        """
        opinions = np.ascontiguousarray(opinions)
        num_rows, n = opinions.shape
        out = np.empty_like(opinions)
        for start, stop in iter_row_chunks(
            num_rows, 3 * n, self.batch_element_budget
        ):
            w = sample_and_gather_neighbor_opinions_batch(
                opinions[start:stop], graph, 3, rng
            )
            out[start:stop] = np.where(w[0] == w[1], w[0], w[2])
        return out

    def single_vertex_law(
        self, alpha: np.ndarray, current_opinion: int
    ) -> np.ndarray:
        # The 3-Majority law does not depend on the current opinion.
        return three_majority_law(alpha)

    def async_population_step(
        self, counts: np.ndarray, rng: np.random.Generator
    ) -> np.ndarray:
        # Specialised for speed: the new opinion is independent of the
        # current one, so only the destination needs the full law.
        n = int(counts.sum())
        alive = np.flatnonzero(counts)
        if alive.size == 1:
            return counts
        alpha = counts[alive] / n
        gamma = float(np.dot(alpha, alpha))
        law = alpha * (1.0 + alpha - gamma)
        old = int(rng.choice(alive, p=alpha))
        new = int(alive[rng.choice(alive.size, p=law / law.sum())])
        if new != old:
            counts[old] -= 1
            counts[new] += 1
        return counts

    def async_population_step_batch(
        self, counts: np.ndarray, rng: np.random.Generator
    ) -> np.ndarray:
        """One asynchronous tick across all R replica rows at once.

        The new opinion is independent of the current one (eq. (5)), so
        each row needs exactly two draws: the updating vertex's current
        opinion (integer-exact from the row's counts) and its next
        opinion (one batched categorical from the row's closed-form
        law).  Dead opinions keep probability 0, so the full-width law
        is exact without per-row support tracking.
        """
        counts = np.asarray(counts, dtype=np.int64)
        totals = counts.sum(axis=1)
        old = sample_holders_batch(counts, 1, rng)[:, 0]
        alpha = counts / totals[:, None]
        gamma = np.einsum("rk,rk->r", alpha, alpha)
        law = alpha * (1.0 + alpha - gamma[:, None])
        new = batch_categorical(law, rng, self.name)
        rows = np.arange(counts.shape[0])
        counts[rows, old] -= 1
        counts[rows, new] += 1
        return counts

    def expected_alpha_next(self, alpha: np.ndarray) -> np.ndarray:
        """Lemma 4.1(i): ``E[alpha_t(i)] = alpha_i (1 + alpha_i - gamma)``."""
        return three_majority_law(alpha)
