"""The 2-Choices dynamics (paper Definition 3.1).

Each vertex ``v`` picks two uniformly random neighbours ``w1, w2`` (with
replacement, self-loops included).  If ``opn(w1) == opn(w2)`` the vertex
adopts that common opinion; otherwise it keeps its own opinion for the
round.  Unlike 3-Majority, the per-vertex law *does* depend on the
vertex's current opinion (paper eq. (6)):

    P[opn_t(v) = i]  =  1 - gamma + alpha_i^2     if opn_{t-1}(v) = i
                     =  alpha_i^2                  otherwise.

On the complete graph with self-loops, conditioned on round ``t-1`` the
vertices update independently, so the group of ``c_m`` vertices currently
holding opinion ``m`` transitions as a multinomial over
``{stay} + {adopt j}``.  Two exact population-step strategies are
implemented and selected by cost:

* **per-group multinomials** — O(a^2) per round where ``a`` is the number
  of alive opinions; ideal when few opinions survive;
* **direct pair sampling** — draw ``(w1, w2)`` opinion pairs for all ``n``
  vertices straight from ``alpha``; O(n) per round, better when ``a`` is
  of order ``sqrt(n)`` or more (e.g. the ``k = n`` balanced start).

Both are exact samplers of the same chain; the test suite checks their
distributional agreement.

Main theorem being reproduced: consensus time ``~Theta(k)`` for all
``2 <= k <= n`` (Theorem 1.1).
"""

from __future__ import annotations

import numpy as np

from repro.core.base import (
    Dynamics,
    batch_multinomial_counts,
    iter_row_chunks,
    multinomial_counts,
    sample_and_gather_neighbor_opinions_batch,
    sample_holders_batch,
)
from repro.graphs.base import Graph

__all__ = ["TwoChoices", "two_choices_law"]


def two_choices_law(alpha: np.ndarray, current_opinion: int) -> np.ndarray:
    """Next-opinion distribution for one vertex, paper eq. (6)."""
    alpha = np.asarray(alpha, dtype=np.float64)
    gamma = float(np.dot(alpha, alpha))
    law = alpha * alpha
    law[current_opinion] = 1.0 - gamma + alpha[current_opinion] ** 2
    return law


class TwoChoices(Dynamics):
    """Synchronous 2-Choices on a complete graph or arbitrary graph.

    Parameters
    ----------
    group_step_threshold:
        Cost crossover between the two exact population-step strategies:
        per-group multinomials cost about ``a^2`` work and direct pair
        sampling about ``n``; the group strategy is used when
        ``a^2 <= group_step_threshold * n``.  The default of 4.0 was
        measured on CPython 3.11 + numpy 2; correctness does not depend
        on it.
    """

    name = "2-choices"
    samples_per_round = 2

    def __init__(self, group_step_threshold: float = 4.0) -> None:
        if group_step_threshold <= 0:
            raise ValueError("group_step_threshold must be positive")
        self.group_step_threshold = float(group_step_threshold)

    def population_step(
        self, counts: np.ndarray, rng: np.random.Generator
    ) -> np.ndarray:
        alive = np.flatnonzero(counts)
        if alive.size == 1:
            return counts.copy()
        n = int(counts.sum())
        if alive.size**2 <= self.group_step_threshold * n:
            return self._population_step_groups(counts, alive, n, rng)
        return self._population_step_pairs(counts, alive, n, rng)

    def _population_step_groups(
        self,
        counts: np.ndarray,
        alive: np.ndarray,
        n: int,
        rng: np.random.Generator,
    ) -> np.ndarray:
        """Exact per-group multinomial strategy, O(a^2)."""
        alpha = counts[alive] / n
        gamma = float(np.dot(alpha, alpha))
        adopt = alpha * alpha  # P[adopt j] = alpha_j^2, any j != current
        new_alive = np.zeros(alive.size, dtype=np.int64)
        for pos in range(alive.size):
            group_size = int(counts[alive[pos]])
            law = adopt.copy()
            law[pos] = 1.0 - gamma + adopt[pos]
            new_alive += multinomial_counts(group_size, law, rng, self.name)
        new_counts = np.zeros_like(counts)
        new_counts[alive] = new_alive
        return new_counts

    def population_step_batch(
        self, counts: np.ndarray, rng: np.random.Generator
    ) -> np.ndarray:
        """All R replicas via the switcher decomposition, O(R k).

        Eq. (6) is equivalent to a two-stage draw: a vertex *switches*
        with probability ``gamma`` and, given a switch, lands on opinion
        ``j`` with probability ``alpha_j^2 / gamma`` (landing on its own
        opinion counts as staying).  Check: for ``j != m`` this gives
        ``gamma * alpha_j^2 / gamma = alpha_j^2``, and for ``j = m`` it
        gives ``(1 - gamma) + alpha_m^2``, both matching eq. (6).
        Because the landing law is the same for every source group, the
        per-group multinomials pool into a single draw: switchers per
        group are binomial and their destinations one multinomial —
        two vectorised numpy calls for all R replicas, versus the O(a^2)
        per-group loop of the sequential strategy.
        """
        counts = np.asarray(counts, dtype=np.int64)
        totals = counts.sum(axis=1)
        alpha = counts / totals[:, None]
        gamma = np.einsum("rk,rk->r", alpha, alpha)
        switchers = rng.binomial(counts, gamma[:, None])
        landing = alpha * alpha / gamma[:, None]
        landed = batch_multinomial_counts(
            switchers.sum(axis=1), landing, rng, self.name
        )
        return counts - switchers + landed

    def _population_step_pairs(
        self,
        counts: np.ndarray,
        alive: np.ndarray,
        n: int,
        rng: np.random.Generator,
    ) -> np.ndarray:
        """Exact direct pair-sampling strategy, O(n).

        Exploits exchangeability: the multiset of new opinions only
        depends on how many members of each current-opinion group see an
        agreeing pair, so we lay vertices out in opinion blocks.
        """
        alpha = counts[alive] / n
        w1 = rng.choice(alive.size, size=n, p=alpha)
        w2 = rng.choice(alive.size, size=n, p=alpha)
        own = np.repeat(np.arange(alive.size), counts[alive])
        new = np.where(w1 == w2, w1, own)
        new_counts = np.zeros_like(counts)
        new_counts[alive] = np.bincount(new, minlength=alive.size)
        return new_counts

    def agent_step(
        self,
        opinions: np.ndarray,
        graph: Graph,
        rng: np.random.Generator,
    ) -> np.ndarray:
        samples = graph.sample_neighbors(rng, 2)
        w1 = opinions[samples[:, 0]]
        w2 = opinions[samples[:, 1]]
        return np.where(w1 == w2, w1, opinions)

    def agent_step_batch(
        self,
        opinions: np.ndarray,
        graph: Graph,
        rng: np.random.Generator,
    ) -> np.ndarray:
        """All R replicas: batched pair sample, keep own on disagreement.

        Rows are chunked under ``batch_element_budget`` like the other
        batched agent steps (the ``(2, rows, n)`` index scratch is the
        dominant term); chunking never changes the sampled law, only
        how the raw stream is consumed.
        """
        opinions = np.ascontiguousarray(opinions)
        num_rows, n = opinions.shape
        out = np.empty_like(opinions)
        for start, stop in iter_row_chunks(
            num_rows, 2 * n, self.batch_element_budget
        ):
            block = opinions[start:stop]
            w = sample_and_gather_neighbor_opinions_batch(
                block, graph, 2, rng
            )
            out[start:stop] = np.where(w[0] == w[1], w[0], block)
        return out

    def single_vertex_law(
        self, alpha: np.ndarray, current_opinion: int
    ) -> np.ndarray:
        return two_choices_law(alpha, current_opinion)

    def async_population_step_batch(
        self, counts: np.ndarray, rng: np.random.Generator
    ) -> np.ndarray:
        """One asynchronous tick across all R replica rows at once.

        Per row: sample the updating vertex's opinion and its two
        neighbours' (three integer-exact draws) and apply the
        combination rule directly — adopt the pair's common opinion,
        else keep the own one.  This samples eq. (6) exactly without
        materialising the per-row law.
        """
        counts = np.asarray(counts, dtype=np.int64)
        draws = sample_holders_batch(counts, 3, rng)
        old, w1, w2 = draws[:, 0], draws[:, 1], draws[:, 2]
        new = np.where(w1 == w2, w1, old)
        rows = np.arange(counts.shape[0])
        counts[rows, old] -= 1
        counts[rows, new] += 1
        return counts

    def expected_alpha_next(self, alpha: np.ndarray) -> np.ndarray:
        """Lemma 4.1(i): identical closed form to 3-Majority.

        ``E[alpha_t(i)] = alpha_i (1 - gamma + alpha_i^2) / alpha_i``...
        expanding eq. (6) over the two conditioning cases gives
        ``alpha_i (1 - gamma + alpha_i^2) + (1 - alpha_i) alpha_i^2
        = alpha_i (1 + alpha_i - gamma)``.
        """
        alpha = np.asarray(alpha, dtype=np.float64)
        gamma = float(np.dot(alpha, alpha))
        return alpha * (1.0 + alpha - gamma)
