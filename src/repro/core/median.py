"""The Median rule of [DGMSS11] (paper Section 1.1).

Doerr, Goldberg, Minder, Sauerwald and Scheideler's protocol assumes the
opinion space is *totally ordered*: each vertex takes the median of its
own opinion and the opinions of two uniformly random neighbours.  For
``k = 2`` it coincides with 2-Choices, which is exactly how 2-Choices was
first (implicitly) analysed; the tests verify the coincidence.

The median rule achieves O(log n) consensus but only *median* validity —
the winning opinion can be one nobody would call a plurality winner, which
is why the paper's dynamics remain interesting for k > 2.  It is included
as a baseline comparator.
"""

from __future__ import annotations

import numpy as np

from repro.core.base import (
    Dynamics,
    batch_multinomial_counts,
    iter_row_chunks,
    sample_holders_batch,
    sample_opinions_from_counts,
)
from repro.graphs.base import Graph

__all__ = ["MedianRule"]


def _median_of_three(
    own: np.ndarray, first: np.ndarray, second: np.ndarray
) -> np.ndarray:
    """Vectorised middle value of three integer arrays."""
    total = own + first + second
    low = np.minimum(np.minimum(own, first), second)
    high = np.maximum(np.maximum(own, first), second)
    return total - low - high


class MedianRule(Dynamics):
    """Median of {own opinion, two random neighbours} per round."""

    name = "median"
    samples_per_round = 2

    def population_step(
        self, counts: np.ndarray, rng: np.random.Generator
    ) -> np.ndarray:
        alive = np.flatnonzero(counts)
        if alive.size == 1:
            return counts.copy()
        n = int(counts.sum())
        # Vertices are exchangeable within an opinion group; lay them out
        # in blocks carrying their *actual labels* (order matters for the
        # median), then sample both neighbours' labels i.i.d. from alpha.
        own = np.repeat(alive, counts[alive])
        pool = sample_opinions_from_counts(counts[alive], (n, 2), rng)
        first = alive[pool[:, 0]]
        second = alive[pool[:, 1]]
        new = _median_of_three(own, first, second)
        return np.bincount(new, minlength=counts.size).astype(np.int64)

    def population_step_batch(
        self, counts: np.ndarray, rng: np.random.Generator
    ) -> np.ndarray:
        """All R replicas via batched per-group closed-form laws.

        The per-vertex median-of-three law (:meth:`single_vertex_law`)
        depends only on the vertex's current opinion, so the ``c_{r,m}``
        vertices of row ``r`` holding opinion ``m`` transition as one
        ``Multinomial(c_{r,m}, law(alpha_r, m))``.  The whole round is
        therefore an ``(R, k, k)`` law tensor — ``single_vertex_law``
        vectorised over rows *and* conditioning opinions — flattened
        into a single batched multinomial over the ``R * k`` groups: one
        numpy call per round, O(R k^2) work independent of ``n``, versus
        the O(R n) per-row neighbour sampling of the sequential step.
        Rows are chunked so the tensor stays within
        ``batch_element_budget`` scratch elements.
        """
        counts = np.asarray(counts, dtype=np.int64)
        num_rows, k = counts.shape
        new_counts = np.empty_like(counts)
        for start, stop in iter_row_chunks(
            num_rows, k * k, self.batch_element_budget
        ):
            new_counts[start:stop] = self._step_rows(
                counts[start:stop], rng
            )
        return new_counts

    def _step_rows(
        self, rows: np.ndarray, rng: np.random.Generator
    ) -> np.ndarray:
        """One vectorised round for a chunk of replica rows."""
        num_rows, k = rows.shape
        totals = rows.sum(axis=1)
        alpha = rows / totals[:, None]
        cdf = np.cumsum(alpha, axis=1)
        both = cdf * cdf
        one = 2.0 * cdf * (1.0 - cdf)
        # own_le[m, x] is "own opinion m counted as <= x", exactly the
        # ``below`` mask of single_vertex_law for every conditioning m.
        own_le = np.arange(k)[None, :] >= np.arange(k)[:, None]
        med_cdf = both[:, None, :] + one[:, None, :] * own_le[None, :, :]
        law = np.diff(med_cdf, axis=-1, prepend=0.0)
        np.clip(law, 0.0, None, out=law)
        draws = batch_multinomial_counts(
            rows.reshape(-1), law.reshape(-1, k), rng, self.name
        )
        return draws.reshape(num_rows, k, k).sum(axis=1)

    def agent_step(
        self,
        opinions: np.ndarray,
        graph: Graph,
        rng: np.random.Generator,
    ) -> np.ndarray:
        samples = graph.sample_neighbors(rng, 2)
        first = opinions[samples[:, 0]]
        second = opinions[samples[:, 1]]
        return _median_of_three(opinions, first, second)

    def single_vertex_law(
        self, alpha: np.ndarray, current_opinion: int
    ) -> np.ndarray:
        """Exact law of median(m, X, Y) with X, Y iid ~ alpha.

        median <= x  iff  at least two of {m, X, Y} are <= x.  With
        ``F(x) = P[X <= x]`` this gives a closed-form CDF per threshold,
        differenced into a pmf.
        """
        alpha = np.asarray(alpha, dtype=np.float64)
        cdf = np.cumsum(alpha)
        m = current_opinion
        below = np.arange(alpha.size) >= m  # own opinion counted as <= x
        # P[median <= x]: own contributes 1 if m <= x.
        both = cdf * cdf
        one = 2.0 * cdf * (1.0 - cdf)
        med_cdf = np.where(below, both + one, both)
        pmf = np.diff(np.concatenate([[0.0], med_cdf]))
        # Clip tiny negatives from floating-point cancellation.
        return np.clip(pmf, 0.0, None)

    def async_population_step_batch(
        self, counts: np.ndarray, rng: np.random.Generator
    ) -> np.ndarray:
        """One asynchronous tick across all R replica rows at once.

        Per row: the updating vertex's opinion plus two i.i.d.
        neighbour opinions (three integer-exact draws) combined with the
        vectorised median-of-three — exactly the law
        :meth:`single_vertex_law` closes over.
        """
        counts = np.asarray(counts, dtype=np.int64)
        draws = sample_holders_batch(counts, 3, rng)
        old = draws[:, 0]
        new = _median_of_three(old, draws[:, 1], draws[:, 2])
        rows = np.arange(counts.shape[0])
        counts[rows, old] -= 1
        counts[rows, new] += 1
        return counts

    def expected_alpha_next(self, alpha: np.ndarray) -> np.ndarray:
        """Exact mean by mixing :meth:`single_vertex_law` over groups."""
        alpha = np.asarray(alpha, dtype=np.float64)
        expected = np.zeros_like(alpha)
        for m in np.flatnonzero(alpha > 0):
            expected += alpha[m] * self.single_vertex_law(alpha, int(m))
        return expected
