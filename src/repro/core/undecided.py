"""The Undecided-State Dynamics (USD), paper Section 2.5 open question.

Each vertex samples one uniformly random neighbour per round.  A *decided*
vertex that sees a different decided opinion becomes *undecided*; an
*undecided* vertex adopts whatever it sees (possibly staying undecided).
Formally, with ``u`` the sampled neighbour of ``v``:

* ``opn(v) = undecided``                          -> ``opn'(v) = opn(u)``
* ``opn(v) = i`` and ``opn(u) in {i, undecided}`` -> ``opn'(v) = i``
* ``opn(v) = i`` and ``opn(u) = j != i`` decided  -> ``opn'(v) = undecided``

The paper notes that the consensus time of USD with arbitrary
``2 <= k <= n`` opinions is open; the extension experiments measure it
empirically.

State convention (both count vectors and agent labels): a configuration
over ``k`` decided opinions lives on ``k + 1`` labels where the *last*
label ``k`` is the undecided state.  Use :func:`with_undecided_slot` to
lift an ordinary k-opinion count vector.  Consensus means one *decided*
opinion holds everything; the all-undecided configuration is absorbing
but unreachable from any decided start in practice, and shows up as a
non-converged run if it ever occurs.

Population step (complete graph with self-loops, exact): conditioned on
round ``t-1``, with ``alpha_u`` the undecided fraction and ``alpha_i`` the
decided fractions,

* group ``i`` (decided): stays ``i`` w.p. ``alpha_i + alpha_u``, becomes
  undecided otherwise — a binomial per group;
* undecided group: next label ``~ alpha`` (including undecided) — one
  multinomial.
"""

from __future__ import annotations

import numpy as np

from repro.core.base import (
    Dynamics,
    batch_binomial,
    batch_multinomial_counts,
    multinomial_counts,
    sample_holders_batch,
)
from repro.errors import ConfigurationError, StateError
from repro.graphs.base import Graph

__all__ = ["UndecidedStateDynamics", "with_undecided_slot"]


def with_undecided_slot(counts: np.ndarray) -> np.ndarray:
    """Append an empty undecided slot to a k-opinion count vector."""
    counts = np.asarray(counts, dtype=np.int64)
    return np.concatenate([counts, [0]])


class UndecidedStateDynamics(Dynamics):
    """Synchronous undecided-state dynamics over ``k`` decided opinions.

    Count vectors must have length ``k + 1``; agent vectors use label
    ``k`` (the last one) for the undecided state.  The agent step needs
    to *know* ``k`` — inferring it from the labels present would mistake
    the top decided label for the undecided state on any fully decided
    start — so either construct with ``num_decided=k`` or run through
    :class:`~repro.engine.agent.AgentEngine` with ``num_opinions =
    k + 1``, which binds it via :meth:`bind_opinion_space`.
    """

    name = "undecided"
    samples_per_round = 1

    def __init__(self, num_decided: int | None = None) -> None:
        #: When given, fixes k so the agent step can locate the undecided
        #: label even if no vertex currently holds it.  Engines that know
        #: their opinion-space size bind it via :meth:`bind_opinion_space`.
        self.num_decided = num_decided

    def bind_opinion_space(self, num_opinions: int) -> None:
        """Derive the undecided label from the engine's opinion space.

        An engine running over ``num_opinions`` labels means ``k =
        num_opinions - 1`` decided opinions plus the undecided slot.  A
        conflicting earlier binding (or explicit ``num_decided``) raises
        rather than silently relabelling which opinion is "undecided" —
        reuse one instance per opinion-space size.
        """
        derived = int(num_opinions) - 1
        if derived < 1:
            raise ConfigurationError(
                "undecided dynamics needs at least 2 labels (one decided "
                f"opinion plus the undecided slot), got {num_opinions}"
            )
        if self.num_decided is None:
            self.num_decided = derived
        elif int(self.num_decided) != derived:
            raise ConfigurationError(
                f"this UndecidedStateDynamics is bound to num_decided="
                f"{self.num_decided} but the engine has {num_opinions} "
                "labels; construct a fresh instance per opinion-space "
                "size"
            )

    def population_step(
        self, counts: np.ndarray, rng: np.random.Generator
    ) -> np.ndarray:
        if counts.size < 2:
            raise StateError(
                "undecided dynamics needs a k+1 count vector (k >= 1)"
            )
        n = int(counts.sum())
        k = counts.size - 1
        alpha = counts / n
        alpha_u = float(alpha[k])
        new_counts = np.zeros_like(counts)
        # Decided groups: stay with probability alpha_i + alpha_u
        # (clipped: the sum of two count ratios can exceed 1 by an ulp).
        decided = np.flatnonzero(counts[:k])
        stay_prob = np.minimum(alpha[decided] + alpha_u, 1.0)
        stayers = rng.binomial(counts[decided], stay_prob)
        new_counts[decided] += stayers
        new_counts[k] += int((counts[decided] - stayers).sum())
        # Undecided group: adopt a uniformly random vertex's state.
        undecided_count = int(counts[k])
        if undecided_count:
            adopted = multinomial_counts(
                undecided_count, alpha, rng, self.name
            )
            new_counts += adopted
        return new_counts

    def population_step_batch(
        self, counts: np.ndarray, rng: np.random.Generator
    ) -> np.ndarray:
        """All R replicas via row-wise binomials + one batched multinomial.

        A direct lift of :meth:`population_step` to matrix operands —
        the population step is already group-wise closed-form, so the
        batched version is the same two draws on ``(R, k)`` operands:
        per-group binomial stayers (element-wise over the decided block)
        and one batched multinomial for every row's undecided pool.
        """
        counts = np.asarray(counts, dtype=np.int64)
        if counts.ndim != 2 or counts.shape[1] < 2:
            raise StateError(
                "undecided dynamics needs (R, k+1) count rows (k >= 1)"
            )
        totals = counts.sum(axis=1)
        alpha = counts / totals[:, None]
        stay_prob = np.minimum(alpha[:, :-1] + alpha[:, -1:], 1.0)
        stayers = batch_binomial(
            counts[:, :-1], stay_prob, rng, self.name
        )
        new_counts = np.zeros_like(counts)
        new_counts[:, :-1] = stayers
        new_counts[:, -1] = (counts[:, :-1] - stayers).sum(axis=1)
        new_counts += batch_multinomial_counts(
            counts[:, -1], alpha, rng, self.name
        )
        return new_counts

    def is_consensus_counts(self, counts: np.ndarray) -> bool:
        """Consensus means one *decided* opinion holds everything.

        The all-undecided configuration is absorbing but is *not*
        consensus under the ``k + 1``-label convention — a run stuck
        there keeps going and surfaces as censored, in every engine.
        """
        counts = np.asarray(counts)
        return bool(counts[:-1].max() == counts.sum())

    def consensus_mask_batch(self, counts: np.ndarray) -> np.ndarray:
        """Row-wise :meth:`is_consensus_counts` for the batch engine."""
        counts = np.asarray(counts)
        return counts[:, :-1].max(axis=1) == counts.sum(axis=1)

    def consensus_mask_agents(self, opinions: np.ndarray) -> np.ndarray:
        """Agent-level convention: uniform on a *decided* label only.

        A row uniformly holding the undecided label is absorbing but not
        consensus — the batched graph engine keeps it running (it
        surfaces as censored), matching the count-level rule.
        """
        opinions = np.asarray(opinions)
        uniform = (opinions == opinions[:, :1]).all(axis=1)
        return uniform & (opinions[:, 0] != self._undecided_label())

    def _undecided_label(self) -> int:
        if self.num_decided is not None:
            return int(self.num_decided)
        raise ConfigurationError(
            "UndecidedStateDynamics cannot locate the undecided label "
            "from an agent vector alone (from a fully decided start the "
            "top decided label would be mistaken for it): construct it "
            "with num_decided=k, or run it through an engine that binds "
            "the opinion-space size (AgentEngine passes num_opinions "
            "through bind_opinion_space)"
        )

    def agent_step(
        self,
        opinions: np.ndarray,
        graph: Graph,
        rng: np.random.Generator,
    ) -> np.ndarray:
        undecided = self._undecided_label()
        seen = opinions[graph.sample_neighbors(rng, 1)[:, 0]]
        undecided_now = opinions == undecided
        clash = ~undecided_now & (seen != opinions) & (seen != undecided)
        result = opinions.copy()
        result[undecided_now] = seen[undecided_now]
        result[clash] = undecided
        return result

    def async_population_step_batch(
        self, counts: np.ndarray, rng: np.random.Generator
    ) -> np.ndarray:
        """One asynchronous tick across all R replica rows at once.

        Count vectors use the population-level convention (last label =
        undecided).  Per row: sample the updating vertex's state and one
        neighbour's (two integer-exact draws) and apply the USD rule —
        an undecided vertex adopts what it sees; a decided one stays put
        on seeing its own opinion or an undecided vertex, and goes
        undecided on any decided clash.  Exactly
        :meth:`single_vertex_law`, sampled without materialising it.
        """
        counts = np.asarray(counts, dtype=np.int64)
        undecided = counts.shape[1] - 1
        draws = sample_holders_batch(counts, 2, rng)
        old, seen = draws[:, 0], draws[:, 1]
        new = np.where(
            old == undecided,
            seen,
            np.where(
                (seen == old) | (seen == undecided), old, undecided
            ),
        )
        rows = np.arange(counts.shape[0])
        counts[rows, old] -= 1
        counts[rows, new] += 1
        return counts

    def single_vertex_law(
        self, alpha: np.ndarray, current_opinion: int
    ) -> np.ndarray:
        """Law over the ``k + 1`` labels for one vertex.

        ``current_opinion = k`` (the last index) means undecided.
        """
        alpha = np.asarray(alpha, dtype=np.float64)
        k = alpha.size - 1
        law = np.zeros_like(alpha)
        if current_opinion == k:
            return alpha.copy()
        stay = alpha[current_opinion] + alpha[k]
        law[current_opinion] = stay
        law[k] = 1.0 - stay
        return law

    def expected_alpha_next(self, alpha: np.ndarray) -> np.ndarray:
        """Exact one-step mean over the ``k + 1`` labels.

        decided i: stayers ``alpha_i (alpha_i + alpha_u)`` plus converts
        from the undecided pool ``alpha_u alpha_i``; undecided gets the
        complement.
        """
        alpha = np.asarray(alpha, dtype=np.float64)
        k = alpha.size - 1
        alpha_u = alpha[k]
        expected = np.empty_like(alpha)
        decided = alpha[:k]
        expected[:k] = decided * (decided + alpha_u) + alpha_u * decided
        expected[k] = 1.0 - expected[:k].sum()
        return expected
