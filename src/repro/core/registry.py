"""Dynamics registry: build any dynamics from a short string spec.

Experiment configuration files and the CLI refer to dynamics by name,
e.g. ``"3-majority"``, ``"2-choices"``, ``"5-majority"``, ``"undecided"``,
``"voter"``, ``"median"``.  :func:`make_dynamics` resolves such a spec to
an instance.
"""

from __future__ import annotations

import re

from repro.core.base import Dynamics
from repro.core.h_majority import HMajority
from repro.core.median import MedianRule
from repro.core.three_majority import ThreeMajority
from repro.core.two_choices import TwoChoices
from repro.core.undecided import UndecidedStateDynamics
from repro.core.voter import Voter
from repro.errors import ConfigurationError

__all__ = ["make_dynamics", "available_dynamics"]

_FACTORIES = {
    "3-majority": ThreeMajority,
    "three-majority": ThreeMajority,
    "2-choices": TwoChoices,
    "two-choices": TwoChoices,
    "voter": Voter,
    "median": MedianRule,
    "undecided": UndecidedStateDynamics,
}

_H_MAJORITY = re.compile(r"^(\d+)-majority$")


def make_dynamics(spec: str | Dynamics) -> Dynamics:
    """Resolve ``spec`` into a :class:`~repro.core.base.Dynamics`.

    Accepted specs: any key of :func:`available_dynamics`, or
    ``"<h>-majority"`` for sampled majority-of-h (``h != 3`` uses
    :class:`HMajority`; ``h = 3`` uses the closed-form
    :class:`ThreeMajority`).  Passing an existing instance returns it
    unchanged.
    """
    if isinstance(spec, Dynamics):
        return spec
    key = spec.strip().lower()
    factory = _FACTORIES.get(key)
    if factory is not None:
        return factory()
    match = _H_MAJORITY.match(key)
    if match:
        return HMajority(int(match.group(1)))
    raise ConfigurationError(
        f"unknown dynamics spec {spec!r}; known: "
        + ", ".join(sorted(available_dynamics()))
        + ", or '<h>-majority'"
    )


def available_dynamics() -> list[str]:
    """Canonical names of all registered dynamics."""
    return ["3-majority", "2-choices", "voter", "median", "undecided"]
