"""The h-Majority dynamics (paper Section 2.5 extension).

Each vertex samples ``h`` uniformly random neighbours with replacement and
adopts the most frequent opinion in the sample, with ties broken uniformly
at random among the tied opinions.  ``h = 1`` reduces to the Voter model;
``h = 3`` agrees in distribution with :class:`~repro.core.three_majority.
ThreeMajority` (a property the tests verify).

On the complete graph the next-opinion law is common to all vertices, so
the population step draws each vertex's ``h`` samples from ``alpha``,
computes the majority winner per vertex in a vectorised pass, and
histograms the winners.  This costs O(n h^2) per round — not O(#alive)
like 3-Majority's closed form, because the majority-of-h law has no
polynomial-size sufficient statistic for general ``h`` — but remains exact.
"""

from __future__ import annotations

import numpy as np

from repro.core.base import Dynamics, sample_opinions_from_counts
from repro.graphs.base import Graph

__all__ = ["HMajority", "majority_winners"]


def majority_winners(
    samples: np.ndarray, rng: np.random.Generator
) -> np.ndarray:
    """Row-wise plurality winner with uniform random tie-breaking.

    ``samples`` is an ``(n, h)`` array of opinion labels.  For each row,
    returns the most frequent label; when several labels tie for the
    maximum count, each tied label wins with equal probability.

    Implementation: for each position ``a``, count how many positions in
    the same row carry the same label (O(h^2) vectorised over rows), then
    pick a uniformly random position among those achieving the row
    maximum.  Positions holding a tied label are equinumerous (each tied
    label occupies exactly ``max_count`` positions), so uniform-over-
    positions equals uniform-over-tied-labels.
    """
    samples = np.asarray(samples)
    n, h = samples.shape
    occurrence = np.zeros((n, h), dtype=np.int32)
    for a in range(h):
        for b in range(h):
            occurrence[:, a] += samples[:, a] == samples[:, b]
    # Uniform tie-break: jitter each position by U(0,1) and take argmax.
    # Ties between positions of the *same* label are harmless.
    jitter = rng.random((n, h))
    winner_pos = np.argmax(occurrence + jitter, axis=1)
    return samples[np.arange(n), winner_pos]


class HMajority(Dynamics):
    """Majority-of-h dynamics with uniform random tie-breaking."""

    def __init__(self, h: int) -> None:
        if h < 1:
            raise ValueError(f"h must be at least 1, got {h}")
        self.h = int(h)
        self.name = f"{self.h}-majority(sampled)"
        self.samples_per_round = self.h

    def population_step(
        self, counts: np.ndarray, rng: np.random.Generator
    ) -> np.ndarray:
        alive = np.flatnonzero(counts)
        if alive.size == 1:
            return counts.copy()
        n = int(counts.sum())
        samples = sample_opinions_from_counts(
            counts[alive], (n, self.h), rng
        )
        winners = majority_winners(samples, rng)
        new_counts = np.zeros_like(counts)
        new_counts[alive] = np.bincount(winners, minlength=alive.size)
        return new_counts

    def agent_step(
        self,
        opinions: np.ndarray,
        graph: Graph,
        rng: np.random.Generator,
    ) -> np.ndarray:
        samples = opinions[graph.sample_neighbors(rng, self.h)]
        return majority_winners(samples, rng)

    def single_vertex_law(
        self, alpha: np.ndarray, current_opinion: int
    ) -> np.ndarray:
        """Exact majority-of-h law by dynamic programming over counts.

        Only intended for small ``h`` and small support (used by the
        asynchronous engine and by tests); cost grows quickly with both.
        For ``h <= 2`` closed forms are used.
        """
        alpha = np.asarray(alpha, dtype=np.float64)
        if self.h == 1:
            return alpha.copy()
        support = np.flatnonzero(alpha > 0)
        if support.size > 12 or self.h > 8:
            raise NotImplementedError(
                "exact h-majority law is exponential in the support size; "
                f"support={support.size}, h={self.h} is too large"
            )
        law = np.zeros_like(alpha)
        # Enumerate compositions of h over the support.
        from itertools import product

        from math import factorial

        h = self.h
        fact_h = factorial(h)
        for combo in product(range(h + 1), repeat=support.size):
            if sum(combo) != h:
                continue
            prob = fact_h
            for c, idx in zip(combo, support):
                prob *= alpha[idx] ** c / factorial(c)
            top = max(combo)
            winners = [
                idx for c, idx in zip(combo, support) if c == top
            ]
            share = prob / len(winners)
            for idx in winners:
                law[idx] += share
        return law

    def expected_alpha_next(self, alpha: np.ndarray) -> np.ndarray:
        """Exact mean via :meth:`single_vertex_law` (small supports only)."""
        return self.single_vertex_law(np.asarray(alpha, dtype=np.float64), 0)
