"""The h-Majority dynamics (paper Section 2.5 extension).

Each vertex samples ``h`` uniformly random neighbours with replacement and
adopts the most frequent opinion in the sample, with ties broken uniformly
at random among the tied opinions.  ``h = 1`` reduces to the Voter model;
``h = 3`` agrees in distribution with :class:`~repro.core.three_majority.
ThreeMajority` (a property the tests verify).

On the complete graph the next-opinion law is common to all vertices, so
the population step draws each vertex's ``h`` samples from ``alpha``,
computes the majority winner per vertex in a vectorised pass, and
histograms the winners.  This costs O(n h^2) per round — not O(#alive)
like 3-Majority's closed form, because the majority-of-h law has no
polynomial-size sufficient statistic for general ``h`` — but remains exact.
"""

from __future__ import annotations

import numpy as np

from repro.backends import active_backend, backend_kernel, quarantine_kernel
from repro.core.base import (
    Dynamics,
    iter_row_chunks,
    sample_holders_batch,
    sample_opinions_from_counts,
    sample_opinions_from_counts_batch,
)
from repro.graphs.base import Graph

__all__ = ["HMajority", "majority_winners"]


def majority_winners(
    samples: np.ndarray, rng: np.random.Generator
) -> np.ndarray:
    """Row-wise plurality winner with uniform random tie-breaking.

    ``samples`` is an ``(n, h)`` array of opinion labels.  For each row,
    returns the most frequent label; when several labels tie for the
    maximum count, each tied label wins with equal probability.

    Implementation: for each position ``a``, count how many positions in
    the same row carry the same label (O(h^2) vectorised over rows), then
    pick a uniformly random position among those achieving the row
    maximum.  Positions holding a tied label are equinumerous (each tied
    label occupies exactly ``max_count`` positions), so uniform-over-
    positions equals uniform-over-tied-labels.

    The h^2 counting passes are memory-bandwidth-bound on large inputs,
    so occurrence counts use the narrowest safe dtype (they fit ``h``;
    int8 up to h = 127).  The tie-break sum stays float64: in float32,
    a jitter within 2^-22 of 1 rounds ``count + jitter`` up to the next
    integer, letting a minority position tie the true maximum — float64
    pushes that phantom-tie probability back to ~2^-52 per position.

    When the active backend provides a ``majority_winners`` kernel the
    whole pass runs compiled (streaming counts in wide scalars, same
    uniform tie-break law, different raw RNG stream — distribution-
    equal, not bitwise).
    """
    samples = np.asarray(samples)
    n, h = samples.shape
    kernel = backend_kernel("majority_winners")
    if kernel is not None:
        try:
            return kernel(samples, rng)
        except Exception as exc:
            # Degrade to the reference pass below rather than abort the
            # run; the kernel is quarantined (and warned about) once.
            quarantine_kernel(active_backend(), "majority_winners", exc)
    # Dtype-widening guard: occurrence counts reach h, so int8 scratch
    # is only safe while h fits int8.  At h > 127 the counts would wrap
    # negative and argmax would silently crown a minority label, so the
    # scratch MUST widen with h (regression-tested at h = 130).
    if h <= np.iinfo(np.int8).max:
        count_dtype: type = np.int8
    elif h <= np.iinfo(np.int16).max:
        count_dtype = np.int16
    else:
        count_dtype = np.int32
    occurrence = np.zeros((n, h), dtype=count_dtype)
    for a in range(h):
        for b in range(h):
            occurrence[:, a] += samples[:, a] == samples[:, b]
    # Uniform tie-break: jitter each position by U(0,1) and take argmax.
    # Ties between positions of the *same* label are harmless.
    jitter = rng.random((n, h))
    winner_pos = np.argmax(occurrence + jitter, axis=1)
    return samples[np.arange(n), winner_pos]


class HMajority(Dynamics):
    """Majority-of-h dynamics with uniform random tie-breaking.

    Parameters
    ----------
    h:
        Neighbour samples per vertex per round.
    batch_element_budget:
        Memory guard for :meth:`population_step_batch`: the shared
        ``(R, n*h)`` sample matrix is chunked row-wise so it never
        outgrows this many elements per call (default
        :data:`~repro.core.base.BATCH_ELEMENT_BUDGET` = 2**22; the
        counting/jitter buffers alongside it put the peak at a few
        times the budget in bytes).  Purely a space/batching knob —
        chunked and unchunked paths sample the same chain (tests
        KS-check this).
    """

    def __init__(
        self, h: int, batch_element_budget: int | None = None
    ) -> None:
        if h < 1:
            raise ValueError(f"h must be at least 1, got {h}")
        self.h = int(h)
        self.name = f"{self.h}-majority(sampled)"
        self.samples_per_round = self.h
        if batch_element_budget is not None:
            if batch_element_budget < 1:
                raise ValueError(
                    "batch_element_budget must be positive, got "
                    f"{batch_element_budget}"
                )
            self.batch_element_budget = int(batch_element_budget)

    def population_step(
        self, counts: np.ndarray, rng: np.random.Generator
    ) -> np.ndarray:
        alive = np.flatnonzero(counts)
        if alive.size == 1:
            return counts.copy()
        n = int(counts.sum())
        samples = sample_opinions_from_counts(
            counts[alive], (n, self.h), rng
        )
        winners = majority_winners(samples, rng)
        new_counts = np.zeros_like(counts)
        new_counts[alive] = np.bincount(winners, minlength=alive.size)
        return new_counts

    def population_step_batch(
        self, counts: np.ndarray, rng: np.random.Generator
    ) -> np.ndarray:
        """All R replicas through one shared-sample majority pass.

        Draws every replica's ``(n, h)`` neighbour samples in one
        row-wise batched call and flattens them through
        :func:`majority_winners` once — one O(h^2) vectorised counting
        pass over ``R * n`` rows instead of R separate passes.  The
        ``R * n * h`` sample matrix is the memory hot spot, so replica
        rows are chunked to keep live scratch under
        ``batch_element_budget`` elements (see the class docstring);
        chunking changes memory and call granularity only, not the
        sampled chain.
        """
        counts = np.asarray(counts, dtype=np.int64)
        num_rows, k = counts.shape
        totals = counts.sum(axis=1)
        if (totals != totals[0]).any():
            # The shared-sample layout needs one common n; uneven rows
            # (never produced by the batch engine) take the row loop.
            return super().population_step_batch(counts, rng)
        n = int(totals[0])
        kernel = backend_kernel("hmajority_population_batch")
        if kernel is not None:
            # Fused draw+count+histogram pass: the (rows, n*h) shared
            # sample matrix is never materialised, so there is nothing
            # to chunk and the element budget does not apply.
            try:
                return kernel(counts, self.h, rng)
            except Exception as exc:
                quarantine_kernel(
                    active_backend(), "hmajority_population_batch", exc
                )
        new_counts = np.empty_like(counts)
        for start, stop in iter_row_chunks(
            num_rows, n * self.h, self.batch_element_budget
        ):
            rows = stop - start
            samples = sample_opinions_from_counts_batch(
                counts[start:stop], n * self.h, rng, dtype=np.int32
            )
            winners = majority_winners(
                samples.reshape(rows * n, self.h), rng
            ).reshape(rows, n)
            offsets = np.arange(rows, dtype=np.int64)[:, None] * k
            new_counts[start:stop] = np.bincount(
                (winners + offsets).reshape(-1), minlength=rows * k
            ).reshape(rows, k)
        return new_counts

    def agent_step(
        self,
        opinions: np.ndarray,
        graph: Graph,
        rng: np.random.Generator,
    ) -> np.ndarray:
        samples = opinions[graph.sample_neighbors(rng, self.h)]
        return majority_winners(samples, rng)

    def async_population_step_batch(
        self, counts: np.ndarray, rng: np.random.Generator
    ) -> np.ndarray:
        """One asynchronous tick across all R replica rows at once.

        Per row: the updating vertex's opinion plus its ``h`` neighbour
        samples (integer-exact draws) reduced by the shared
        :func:`majority_winners` pass.  Sampling the majority directly
        is distribution-equal to the exact enumerated law of
        :meth:`single_vertex_law` but has no support-size/h ceiling, so
        — unlike the sequential asynchronous step, which inherits that
        law's ``NotImplementedError`` guard — the batched tick works
        for any ``h`` and any support.
        """
        counts = np.asarray(counts, dtype=np.int64)
        draws = sample_holders_batch(counts, self.h + 1, rng)
        old = draws[:, 0]
        new = majority_winners(draws[:, 1:], rng)
        rows = np.arange(counts.shape[0])
        counts[rows, old] -= 1
        counts[rows, new] += 1
        return counts

    def single_vertex_law(
        self, alpha: np.ndarray, current_opinion: int
    ) -> np.ndarray:
        """Exact majority-of-h law by dynamic programming over counts.

        Only intended for small ``h`` and small support (used by the
        asynchronous engine and by tests); cost grows quickly with both.
        For ``h <= 2`` closed forms are used.
        """
        alpha = np.asarray(alpha, dtype=np.float64)
        if self.h == 1:
            return alpha.copy()
        support = np.flatnonzero(alpha > 0)
        if support.size > 12 or self.h > 8:
            raise NotImplementedError(
                "exact h-majority law is exponential in the support size; "
                f"support={support.size}, h={self.h} is too large"
            )
        law = np.zeros_like(alpha)
        # Enumerate compositions of h over the support.
        from itertools import product

        from math import factorial

        h = self.h
        fact_h = factorial(h)
        for combo in product(range(h + 1), repeat=support.size):
            if sum(combo) != h:
                continue
            prob = fact_h
            for c, idx in zip(combo, support):
                prob *= alpha[idx] ** c / factorial(c)
            top = max(combo)
            winners = [
                idx for c, idx in zip(combo, support) if c == top
            ]
            share = prob / len(winners)
            for idx in winners:
                law[idx] += share
        return law

    def expected_alpha_next(self, alpha: np.ndarray) -> np.ndarray:
        """Exact mean via :meth:`single_vertex_law` (small supports only)."""
        return self.single_vertex_law(np.asarray(alpha, dtype=np.float64), 0)
