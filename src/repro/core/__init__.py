"""Consensus dynamics: the paper's objects of study plus baselines.

* :class:`ThreeMajority`, :class:`TwoChoices` — the two dynamics whose
  consensus time the paper pins down (Theorem 1.1);
* :class:`HMajority`, :class:`UndecidedStateDynamics` — the Section 2.5
  extensions;
* :class:`Voter`, :class:`MedianRule` — baselines from the related work.
"""

from repro.core.base import (
    BATCH_ELEMENT_BUDGET,
    Dynamics,
    batch_binomial,
    batch_categorical,
    batch_multinomial_counts,
    gather_neighbor_opinions_batch,
    iter_row_chunks,
    multinomial_counts,
    sample_and_gather_neighbor_opinions_batch,
    sample_holders_batch,
    sample_opinions_from_counts,
    sample_opinions_from_counts_batch,
)
from repro.core.h_majority import HMajority
from repro.core.median import MedianRule
from repro.core.registry import available_dynamics, make_dynamics
from repro.core.three_majority import ThreeMajority, three_majority_law
from repro.core.two_choices import TwoChoices, two_choices_law
from repro.core.undecided import UndecidedStateDynamics, with_undecided_slot
from repro.core.voter import Voter

__all__ = [
    "BATCH_ELEMENT_BUDGET",
    "Dynamics",
    "HMajority",
    "MedianRule",
    "ThreeMajority",
    "TwoChoices",
    "UndecidedStateDynamics",
    "Voter",
    "available_dynamics",
    "batch_binomial",
    "batch_categorical",
    "batch_multinomial_counts",
    "gather_neighbor_opinions_batch",
    "iter_row_chunks",
    "make_dynamics",
    "multinomial_counts",
    "sample_and_gather_neighbor_opinions_batch",
    "sample_holders_batch",
    "sample_opinions_from_counts",
    "sample_opinions_from_counts_batch",
    "three_majority_law",
    "two_choices_law",
    "with_undecided_slot",
]
