"""Command-line interface: ``python -m repro`` / ``repro-experiments``.

Subcommands
-----------
``list``
    Show the experiment index (id, title, presets).
``run <id> [--preset P] [--seed N] [--csv DIR]``
    Run one experiment, print its paper-style table and the
    paper-vs-measured verdicts, optionally dumping CSV.
``all [--preset P] [--seed N] [--csv DIR]``
    Run every experiment in index order (the full reproduction sweep
    used to populate EXPERIMENTS.md).
``report [--preset P] [--seed N] [--output PATH]``
    Run every experiment and write the paper-vs-measured markdown
    report (the file shipped as EXPERIMENTS.md).
``simulate --dynamics D --n N --k K [--engine E] [--replicas R] [...]``
    Ad-hoc runs to consensus through the unified simulation API.  A
    single population run prints a per-round trajectory summary; with
    ``--replicas`` (or ``--engine batch``) it prints the aggregate
    consensus-time quantiles, censoring and winner histogram instead.
    ``--graph FAMILY [--degree D | --edge-probability P]`` runs on a
    sparse substrate: the graph-capable engines take over (``agent``,
    or the vectorised ``agent-batch`` when replicated).
    ``--adversary NAME --adversary-budget F`` attacks every run with an
    F-bounded adversary ([GL18] model); with ``F >= 1`` the stopping
    rule becomes the near-consensus threshold (leader holds all but 4F
    vertices, majority-floored — strict consensus is trivially
    blockable) on engines that support a custom target; engines without
    one (``async``) measure strict consensus and say so.
``sweep --n N [N...] --k K [K...] [--dynamics D [D...]] [...]``
    Cached consensus-time sweep over the (dynamics, n, k) grid, with
    optional process-parallel workers.  Measurement is batch-first: a
    point's replicas run in one vectorised engine
    (``batch``/``agent-batch``/``async-batch``) unless ``--measure
    sequential`` asks for the historical one-run-per-replica path;
    ``--chain async`` sweeps the one-vertex-per-tick [CMRSS25] chain
    instead of the synchronous one.  ``--graph random-regular
    --degree 4 8 16`` adds a graph-density grid axis (the "consensus
    time vs. degree" workload family); ``--adversary NAME
    --adversary-budget F [F...]`` adds the adversary to every point
    (several budgets form a tolerance-sweep grid axis).  Points cache
    under distinct keys per substrate, chain, strategy, budget *and*
    measurement mode — batched values are never read from (or written
    over) old sequential caches.
``dynamics``
    List the registered dynamics specs.
``engines``
    List the registered simulation engines with their capabilities.
``backends``
    List the registered compute backends (availability, accelerated
    kernels, the auto-detected default).  ``simulate``/``sweep``/
    ``submit`` take ``--backend`` to pin one (sweeps accept several as
    a comparison grid axis); the default is fail-closed auto-detection
    overridable via the ``REPRO_BACKEND`` environment variable.
``serve --db PATH [--cache DIR] [--port P] [--fleet N] [...]``
    Run the simulation service: persistent SQLite job store, priority
    scheduler with per-client quotas, a worker fleet executing jobs
    through the batch-first sweep path into one shared result cache,
    and the submit/poll/result HTTP API.  Prints the bound URL (use
    ``--port 0`` for an ephemeral port) and serves until interrupted;
    orphaned ``running`` jobs from a previous process are re-queued at
    startup.
``submit --url URL --n N [N...] --k K [K...] [...] [--wait]``
    Submit the same grid the ``sweep`` subcommand would measure as a
    job against a running service; prints the job id (or, with
    ``--wait``, polls to completion and prints the result table).
``status --url URL JOB_ID``
    One job's lifecycle state, progress and retry accounting.
``result --url URL JOB_ID [--wait]``
    Result table of a finished job (``--wait`` polls first).
``jobs --url URL [--state S | --dead] [--client C] [--requeue ID ...]``
    List jobs on a running service, optionally filtered by state or
    client (``--dead`` is shorthand for ``--state dead``); with
    ``--requeue`` return the named dead jobs to the queue with a fresh
    retry budget instead of listing.
``chaos [--plan NAME | --plan-file PATH] [--seed N] [...]``
    Stand up a throwaway service, submit a deterministic batch of
    sweep jobs under the named seeded fault plan, and audit the chaos
    invariants: every job settles done/dead, dead jobs carry errors,
    no job is lost or duplicated, done results match a fault-free
    baseline byte-for-byte, and the sweep cache's provenance chain
    replays clean.  Exits non-zero on any violation; the same plan
    name + seed replays the same fault schedule anywhere.
``lint [PATH ...] [--select RULE ...] [--list]``
    Statically check the package source (default: the installed
    ``repro`` package) against the codebase invariants — RNG seeding
    discipline, vectorized batch contracts, registry completeness,
    optimize-safe raises, spec threading, store transactions — and
    exit non-zero on violations.  ``# repro: noqa[rule-name]``
    suppresses a line; see README "Codebase invariants".
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.adversary import (
    available_adversaries,
    near_consensus_target,
    near_consensus_threshold,
)
from repro.analysis.comparison import render_comparisons_markdown
from repro.backends import (
    AUTO_BACKEND,
    available_backends,
    backend_available,
    default_backend,
    get_backend,
)
from repro.core.registry import available_dynamics
from repro.engine.registry import available_engines, get_engine
from repro.errors import (
    BackendUnavailableError,
    ConfigurationError,
    GraphError,
)
from repro.experiments.registry import EXPERIMENTS, run_experiment
from repro.faults import available_plans
from repro.graphs import GRAPH_FAMILIES, make_graph
from repro.service.jobs import JOB_STATES
from repro.simulation import INITIAL_FAMILIES

__all__ = ["main"]


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction harness for '3-Majority and 2-Choices with "
            "Many Opinions' (Shimizu & Shiraga, PODC 2025)."
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list experiments")
    sub.add_parser("dynamics", help="list registered dynamics")
    sub.add_parser("engines", help="list registered simulation engines")
    sub.add_parser(
        "backends",
        help=(
            "list registered compute backends, availability and the "
            "auto-detected default"
        ),
    )

    lint_parser = sub.add_parser(
        "lint",
        help=(
            "statically check the package source against the codebase "
            "invariants (AST rules; exits non-zero on violations)"
        ),
    )
    lint_parser.add_argument(
        "paths",
        nargs="*",
        help=(
            "files or directories to check (default: the installed "
            "repro package source)"
        ),
    )
    lint_parser.add_argument(
        "--select",
        nargs="+",
        metavar="RULE",
        default=None,
        help="run only the named rules (default: every registered rule)",
    )
    lint_parser.add_argument(
        "--list",
        action="store_true",
        dest="list_rules",
        help="list the registered rules and exit",
    )

    verify_parser = sub.add_parser(
        "verify",
        help=(
            "replay-verify the provenance chains of sweep caches / "
            "benchmark output directories (exits non-zero on any "
            "broken link, tampered payload or orphaned manifest)"
        ),
    )
    verify_parser.add_argument(
        "paths",
        nargs="+",
        help=(
            "directories whose manifest chains to verify (a file path "
            "verifies the directory containing it)"
        ),
    )

    run_parser = sub.add_parser("run", help="run one experiment")
    run_parser.add_argument("experiment_id", choices=sorted(EXPERIMENTS))
    _add_common(run_parser)

    all_parser = sub.add_parser("all", help="run every experiment")
    _add_common(all_parser)

    report_parser = sub.add_parser(
        "report", help="run everything and write EXPERIMENTS.md"
    )
    _add_common(report_parser)
    report_parser.add_argument(
        "--output",
        default="EXPERIMENTS.md",
        help="markdown file to write (default EXPERIMENTS.md)",
    )

    sim_parser = sub.add_parser(
        "simulate", help="ad-hoc runs to consensus"
    )
    sim_parser.add_argument(
        "--dynamics", default="3-majority", help="dynamics spec"
    )
    sim_parser.add_argument("--n", type=int, required=True)
    sim_parser.add_argument("--k", type=int, required=True)
    sim_parser.add_argument(
        "--initial",
        "--config",
        dest="initial",
        default="balanced",
        choices=sorted(INITIAL_FAMILIES),
        help="initial configuration family (--config is an alias)",
    )
    sim_parser.add_argument(
        "--engine",
        default=None,
        choices=available_engines(),
        help=(
            "simulation engine (default population; with --graph the "
            "default becomes agent, or agent-batch when --replicas > 1)"
        ),
    )
    sim_parser.add_argument(
        "--graph",
        default=None,
        choices=sorted(GRAPH_FAMILIES),
        help=(
            "graph substrate family; picks a graph-capable engine "
            "(agent, or agent-batch with --replicas > 1) unless "
            "--engine names one explicitly"
        ),
    )
    sim_parser.add_argument(
        "--degree",
        type=int,
        default=None,
        help="vertex degree for --graph random-regular",
    )
    sim_parser.add_argument(
        "--edge-probability",
        type=float,
        default=None,
        help="edge probability for --graph erdos-renyi",
    )
    sim_parser.add_argument(
        "--graph-seed",
        type=int,
        default=0,
        help="edge-set seed for random graph families (default 0)",
    )
    sim_parser.add_argument(
        "--replicas",
        type=int,
        default=1,
        help="independent runs; > 1 prints aggregate statistics",
    )
    sim_parser.add_argument(
        "--adversary",
        default=None,
        choices=available_adversaries(),
        help="F-bounded adversary strategy applied after every round",
    )
    sim_parser.add_argument(
        "--adversary-budget",
        type=int,
        default=None,
        metavar="F",
        help="vertices the adversary may move per round",
    )
    sim_parser.add_argument("--seed", type=int, default=0)
    sim_parser.add_argument(
        "--max-rounds", type=int, default=1_000_000
    )
    sim_parser.add_argument(
        "--backend",
        default=AUTO_BACKEND,
        choices=(AUTO_BACKEND, *available_backends()),
        help=(
            "compute backend for the hot-path kernels (default auto: "
            "REPRO_BACKEND env var, else fail-closed auto-detection)"
        ),
    )

    sweep_parser = sub.add_parser(
        "sweep", help="cached consensus-time sweep over a parameter grid"
    )
    _add_sweep_axes(sweep_parser)
    sweep_parser.add_argument(
        "--cache",
        default=None,
        metavar="DIR",
        help="cache directory (measured points are reused on resume)",
    )
    sweep_parser.add_argument(
        "--workers",
        type=int,
        default=None,
        help="process-parallel point evaluation (default sequential)",
    )

    serve_parser = sub.add_parser(
        "serve", help="run the simulation service (job queue + HTTP API)"
    )
    serve_parser.add_argument(
        "--db",
        default="service-jobs.db",
        metavar="PATH",
        help="SQLite job-store path (default service-jobs.db)",
    )
    serve_parser.add_argument(
        "--cache",
        default="service-cache",
        metavar="DIR",
        help="shared sweep result cache directory (default service-cache)",
    )
    serve_parser.add_argument("--host", default="127.0.0.1")
    serve_parser.add_argument(
        "--port",
        type=int,
        default=8642,
        help="HTTP port (0 binds an ephemeral port; default 8642)",
    )
    serve_parser.add_argument(
        "--fleet",
        type=int,
        default=2,
        help="worker threads executing jobs (default 2)",
    )
    serve_parser.add_argument(
        "--job-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="per-job execution timeout (default: none)",
    )
    serve_parser.add_argument(
        "--max-retries",
        type=int,
        default=2,
        help="retries (with backoff) for transient job failures",
    )
    serve_parser.add_argument(
        "--quota-jobs",
        type=int,
        default=16,
        help="max active jobs per client (default 16)",
    )
    serve_parser.add_argument(
        "--quota-points",
        type=int,
        default=512,
        help="max active grid points per client (default 512)",
    )
    serve_parser.add_argument(
        "--quota-points-per-job",
        type=int,
        default=256,
        help="max grid points in a single job (default 256)",
    )

    submit_parser = sub.add_parser(
        "submit", help="submit a sweep grid as a job to a running service"
    )
    _add_sweep_axes(submit_parser)
    _add_service_url(submit_parser)
    submit_parser.add_argument(
        "--client",
        default="cli",
        help="client id for quota accounting (default 'cli')",
    )
    submit_parser.add_argument(
        "--priority",
        type=int,
        default=0,
        help="scheduling priority (higher runs first; default 0)",
    )
    submit_parser.add_argument(
        "--wait",
        action="store_true",
        help="poll until the job finishes and print its result table",
    )
    submit_parser.add_argument(
        "--timeout",
        type=float,
        default=600.0,
        help="--wait polling deadline in seconds (default 600)",
    )

    jobs_parser = sub.add_parser(
        "jobs",
        help=(
            "list jobs on a running service (or requeue dead ones "
            "with --requeue)"
        ),
    )
    _add_service_url(jobs_parser)
    jobs_parser.add_argument(
        "--state",
        default=None,
        choices=JOB_STATES,
        help="only jobs in this lifecycle state",
    )
    jobs_parser.add_argument(
        "--dead",
        action="store_true",
        help="shorthand for --state dead (retry budget exhausted)",
    )
    jobs_parser.add_argument(
        "--client",
        default=None,
        help="only jobs submitted by this client id",
    )
    jobs_parser.add_argument(
        "--requeue",
        nargs="+",
        metavar="JOB_ID",
        default=None,
        help=(
            "return the named dead job(s) to the queue with a fresh "
            "retry budget instead of listing"
        ),
    )

    chaos_parser = sub.add_parser(
        "chaos",
        help=(
            "run the service stack under a seeded fault plan and "
            "audit the chaos invariants (exits non-zero on violations)"
        ),
    )
    chaos_parser.add_argument(
        "--plan",
        default="mixed",
        choices=available_plans(),
        help="builtin fault plan to arm (default mixed)",
    )
    chaos_parser.add_argument(
        "--plan-file",
        default=None,
        metavar="PATH",
        help=(
            "JSON fault-plan document to arm instead of a builtin "
            "plan (see README: fault injection)"
        ),
    )
    chaos_parser.add_argument(
        "--seed",
        type=int,
        default=0,
        help="fault-schedule seed (plan + seed replays identically)",
    )
    chaos_parser.add_argument(
        "--jobs", type=int, default=6, help="sweep jobs to submit"
    )
    chaos_parser.add_argument(
        "--clients",
        type=int,
        default=2,
        help="distinct client identities submitting jobs (default 2)",
    )
    chaos_parser.add_argument(
        "--workers",
        type=int,
        default=3,
        help="worker threads in the throwaway service (default 3)",
    )
    chaos_parser.add_argument(
        "--max-retries",
        type=int,
        default=3,
        help="service retry budget per job (default 3)",
    )
    chaos_parser.add_argument(
        "--dir",
        default=None,
        metavar="DIR",
        help=(
            "working directory for the store/caches (default: a "
            "fresh temp dir)"
        ),
    )
    chaos_parser.add_argument(
        "--keep",
        action="store_true",
        help="keep the working directory instead of removing it",
    )
    chaos_parser.add_argument(
        "--no-baseline",
        action="store_true",
        help="skip the fault-free baseline measurement and comparison",
    )
    chaos_parser.add_argument(
        "--timeout",
        type=float,
        default=120.0,
        help="seconds to wait for every job to settle (default 120)",
    )

    status_parser = sub.add_parser(
        "status", help="show one service job's state and progress"
    )
    _add_service_url(status_parser)
    status_parser.add_argument("job_id")

    result_parser = sub.add_parser(
        "result", help="fetch a finished service job's result table"
    )
    _add_service_url(result_parser)
    result_parser.add_argument("job_id")
    result_parser.add_argument(
        "--wait",
        action="store_true",
        help="poll until the job finishes instead of failing fast",
    )
    result_parser.add_argument(
        "--timeout",
        type=float,
        default=600.0,
        help="--wait polling deadline in seconds (default 600)",
    )
    return parser


def _add_service_url(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--url",
        required=True,
        help="base URL of a running service (see 'repro serve')",
    )


def _add_sweep_axes(parser: argparse.ArgumentParser) -> None:
    """Grid-axis flags shared by ``sweep`` (local) and ``submit`` (remote).

    One flag set, one grid builder (:func:`_grid_from_args`): a grid
    submitted to the service is *by construction* the same grid the
    local subcommand would measure.
    """
    parser.add_argument(
        "--dynamics",
        nargs="+",
        default=["3-majority"],
        help="one or more dynamics specs (grid axis when several)",
    )
    parser.add_argument(
        "--n", type=int, nargs="+", required=True, help="grid values for n"
    )
    parser.add_argument(
        "--k", type=int, nargs="+", required=True, help="grid values for k"
    )
    parser.add_argument(
        "--graph",
        default=None,
        choices=sorted(GRAPH_FAMILIES),
        help="graph substrate family applied at every point",
    )
    parser.add_argument(
        "--degree",
        type=int,
        nargs="+",
        default=None,
        help=(
            "vertex degree(s) for --graph random-regular; several "
            "values form a density-sweep grid axis"
        ),
    )
    parser.add_argument(
        "--edge-probability",
        type=float,
        default=None,
        help="edge probability for --graph erdos-renyi",
    )
    parser.add_argument(
        "--graph-seed",
        type=int,
        default=0,
        help="edge-set seed for random graph families (default 0)",
    )
    parser.add_argument(
        "--runs", type=int, default=3, help="replicas per point (default 3)"
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--max-rounds", type=int, default=None, help="round budget per run"
    )
    parser.add_argument(
        "--adversary",
        default=None,
        choices=available_adversaries(),
        help="adversary strategy applied at every grid point",
    )
    parser.add_argument(
        "--adversary-budget",
        type=int,
        nargs="+",
        default=None,
        metavar="F",
        help=(
            "adversary budget(s); several values add a tolerance-sweep "
            "grid axis"
        ),
    )
    parser.add_argument(
        "--measure",
        default="batch",
        choices=("batch", "sequential"),
        help=(
            "how a point's replicas are measured: 'batch' (default; "
            "one vectorised batch/agent-batch/async-batch engine run "
            "per point) or 'sequential' (one run per replica stream); "
            "the two cache under distinct keys"
        ),
    )
    parser.add_argument(
        "--chain",
        default="sync",
        choices=("sync", "async"),
        help=(
            "chain family to measure: the synchronous round-based "
            "chain (default) or the one-vertex-per-tick [CMRSS25] "
            "chain, reported in synchronous-equivalent rounds"
        ),
    )
    parser.add_argument(
        "--backend",
        nargs="+",
        default=None,
        choices=(AUTO_BACKEND, *available_backends()),
        help=(
            "compute backend(s) for the hot-path kernels; several "
            "values form a backend-comparison grid axis (points cache "
            "under distinct keys per backend)"
        ),
    )


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--preset",
        default="quick",
        help="parameter preset (quick or paper; default quick)",
    )
    parser.add_argument(
        "--seed", type=int, default=0, help="root seed (default 0)"
    )
    parser.add_argument(
        "--csv",
        default=None,
        metavar="DIR",
        help="also write <DIR>/<experiment>.csv",
    )


def _print_result(result, csv_dir: str | None) -> None:
    print(result.table())
    if result.notes:
        print(f"note: {result.notes}\n")
    if result.comparisons:
        print(render_comparisons_markdown(result.comparisons))
    if csv_dir:
        path = result.save_csv(csv_dir)
        print(f"csv written to {path}")
    print()


def main(argv: list[str] | None = None) -> int:
    args = _build_parser().parse_args(argv)
    if args.command == "list":
        for experiment_id in sorted(EXPERIMENTS):
            module = EXPERIMENTS[experiment_id]
            presets = ", ".join(sorted(module.PRESETS))
            print(f"{experiment_id:8s} {module.TITLE}  [presets: {presets}]")
        return 0
    if args.command == "dynamics":
        for name in available_dynamics():
            print(name)
        print("<h>-majority (e.g. 5-majority)")
        return 0
    if args.command == "engines":
        for name in available_engines():
            info = get_engine(name)
            capabilities = ", ".join(
                label
                for label, flag in (
                    ("graph", info.supports_graph),
                    ("target", info.supports_target),
                    ("observers", info.supports_observers),
                    ("adversary", info.supports_adversary),
                )
                if flag
            )
            print(f"{name:12s} {info.description}  [{capabilities}]")
        return 0
    if args.command == "backends":
        default = default_backend()
        for name in available_backends():
            backend = get_backend(name, require_available=False)
            if backend_available(name):
                status = "available"
            else:
                reason = getattr(backend, "unavailable_reason", "")
                status = "unavailable"
                if reason:
                    status += f" ({reason})"
            marker = "  [default]" if name == default.name else ""
            kernels = ", ".join(sorted(backend.accelerates))
            kernel_note = (
                f"  kernels: {kernels}"
                if kernels
                else "  kernels: none (reference paths)"
            )
            print(
                f"{name:12s} {status:12s} {backend.description}"
                f"{kernel_note}{marker}"
            )
        return 0
    if args.command == "run":
        started = time.perf_counter()
        result = run_experiment(
            args.experiment_id, preset=args.preset, seed=args.seed
        )
        _print_result(result, args.csv)
        print(f"elapsed: {time.perf_counter() - started:.1f}s")
        return 0 if result.all_match else 1
    if args.command == "all":
        any_mismatch = False
        for experiment_id in EXPERIMENTS:
            started = time.perf_counter()
            result = run_experiment(
                experiment_id, preset=args.preset, seed=args.seed
            )
            _print_result(result, args.csv)
            print(
                f"[{experiment_id}] elapsed: "
                f"{time.perf_counter() - started:.1f}s\n"
            )
            any_mismatch |= any(
                c.verdict == "mismatch" for c in result.comparisons
            )
        return 1 if any_mismatch else 0
    if args.command == "report":
        return _report(args)
    if args.command == "simulate":
        return _simulate(args)
    if args.command == "sweep":
        return _sweep(args)
    if args.command == "serve":
        return _serve(args)
    if args.command == "submit":
        return _submit(args)
    if args.command == "status":
        return _status(args)
    if args.command == "result":
        return _result(args)
    if args.command == "jobs":
        return _jobs(args)
    if args.command == "chaos":
        return _chaos(args)
    if args.command == "lint":
        return _lint(args)
    if args.command == "verify":
        return _verify(args)
    return 2  # pragma: no cover - argparse enforces the choices


def _verify(args) -> int:
    from pathlib import Path

    from repro.provenance import verify_chain

    exit_code = 0
    for raw in args.paths:
        path = Path(raw)
        # Verifying a single payload file means verifying the chain of
        # the directory that attests it.
        directory = path.parent if path.is_file() else path
        report = verify_chain(directory)
        print(report.render())
        if not report.ok:
            exit_code = 1
    return exit_code


def _lint(args) -> int:
    from pathlib import Path

    from repro.lint import available_rules, get_rule, run_lint

    if args.list_rules:
        for name in available_rules():
            rule = get_rule(name)
            print(f"{name:28s} [{rule.severity}] {rule.description}")
        return 0
    paths = [Path(p) for p in args.paths] or None
    try:
        diagnostics = run_lint(paths, select=args.select)
    except ConfigurationError as exc:
        print(f"error: {exc}")
        return 2
    for diagnostic in diagnostics:
        print(diagnostic.render())
    errors = sum(
        1
        for d in diagnostics
        if d.rule == "syntax-error"
        or get_rule(d.rule).severity == "error"
    )
    if diagnostics:
        print(
            f"{len(diagnostics)} diagnostic(s), {errors} error(s); "
            "suppress a line with '# repro: noqa[rule-name]'"
        )
    return 1 if errors else 0


def _report(args) -> int:
    from pathlib import Path

    from repro.analysis.reporting import render_experiments_markdown

    results = []
    elapsed: dict[str, float] = {}
    for experiment_id in EXPERIMENTS:
        started = time.perf_counter()
        result = run_experiment(
            experiment_id, preset=args.preset, seed=args.seed
        )
        elapsed[experiment_id] = time.perf_counter() - started
        print(
            f"[{experiment_id}] done in {elapsed[experiment_id]:.1f}s"
        )
        if args.csv:
            result.save_csv(args.csv)
        results.append(result)
    body = render_experiments_markdown(
        results, preset=args.preset, elapsed=elapsed
    )
    Path(args.output).write_text(body)
    print(f"report written to {args.output}")
    mismatch = any(
        c.verdict == "mismatch"
        for result in results
        for c in result.comparisons
    )
    return 1 if mismatch else 0


def _simulate(args) -> int:
    from repro.engine import TrajectoryRecorder
    from repro.simulation import Simulation

    engine = args.engine
    graph = None
    if args.graph is None and (
        args.degree is not None or args.edge_probability is not None
    ):
        # Mirror the sweep subcommand: a forgotten --graph must not
        # silently run the complete-graph chain under a sparse label.
        print("error: --degree/--edge-probability require --graph NAME")
        return 2
    if args.graph is not None:
        try:
            graph = make_graph(
                args.graph,
                args.n,
                degree=args.degree,
                edge_probability=args.edge_probability,
                seed=args.graph_seed,
            )
        except Exception as exc:
            print(f"error: {exc}")
            return 2
        if engine is None:
            # No explicit --engine: pick the graph-capable engine
            # matching the workload (batched when replicated).  An
            # explicit non-graph engine falls through to the spec's
            # validation error naming the graph-capable engines.
            engine = "agent" if args.replicas == 1 else "agent-batch"
    elif engine is None:
        engine = "population"
    trajectory = engine == "population" and args.replicas == 1
    builder = (
        Simulation.of(args.dynamics)
        .n(args.n)
        .k(args.k)
        .initial(args.initial)
        .on_graph(graph)
        .engine(engine)
        .replicas(args.replicas)
        .seed(args.seed)
        .max_rounds(args.max_rounds)
        .backend(args.backend)
    )
    threshold = None
    if args.adversary is not None or args.adversary_budget is not None:
        builder.adversary(args.adversary, args.adversary_budget)
        if (
            args.adversary_budget
            and get_engine(engine).supports_target
        ):
            # An F >= 1 adversary can keep a stray vertex alive forever,
            # so "consensus despite the adversary" means the leader
            # reaches the near-consensus threshold (all but 4F
            # vertices, floored at a strict majority).
            threshold = near_consensus_threshold(
                args.n, args.adversary_budget
            )
            builder.stop_when(
                near_consensus_target(args.n, args.adversary_budget)
            )
        elif args.adversary_budget:
            print(
                f"note: engine={engine!r} does not support a "
                "custom stopping target, so this run measures strict "
                "consensus — a stalling adversary can block it for the "
                "whole round budget"
            )
    if trajectory:
        builder.observe_with(
            lambda: (TrajectoryRecorder(record_max_alpha=True),)
        )
    try:
        spec = builder.build()
    except (BackendUnavailableError, ConfigurationError) as exc:
        print(f"error: {exc}")
        return 2
    started = time.perf_counter()
    results = spec.run()
    wall = time.perf_counter() - started

    if trajectory:
        result = results[0]
        recorder = result.metrics["observers"][0]
        arrays = recorder.as_arrays()
        checkpoints = sorted(
            {0, len(arrays["round"]) - 1}
            | {len(arrays["round"]) * p // 4 for p in (1, 2, 3)}
        )
        print(spec.describe())
        for pos in checkpoints:
            print(
                f"  round {arrays['round'][pos]:>8d}: "
                f"gamma={arrays['gamma'][pos]:.5f} "
                f"alive={arrays['alive'][pos]:>6d} "
                f"leader={arrays['max_alpha'][pos]:.3f}"
            )
        if result.converged:
            if result.winner is not None:
                print(
                    f"consensus on opinion {result.winner} after "
                    f"{result.rounds} rounds ({wall:.2f}s wall-clock)"
                )
            else:
                print(
                    f"leader reached the adversarial-agreement "
                    f"threshold of {threshold} vertices after "
                    f"{result.rounds} rounds ({wall:.2f}s wall-clock)"
                )
            return 0
        print(
            f"no consensus within {args.max_rounds} rounds "
            f"({wall:.2f}s wall-clock)"
        )
        return 1

    print(results.summary())
    print(f"elapsed: {wall:.2f}s wall-clock")
    return 0 if results.num_censored == 0 else 1


def _grid_from_args(args) -> tuple[dict, dict]:
    """Build the sweep ``(grid, fixed)`` pair from shared axis flags.

    Used identically by the local ``sweep`` subcommand and the remote
    ``submit`` verb, so a submitted job measures exactly the grid the
    local command would.  Raises :class:`ConfigurationError` on
    inconsistent flag combinations.
    """
    grid: dict[str, list] = {"n": args.n, "k": args.k}
    fixed: dict = {}
    if len(args.dynamics) > 1:
        grid["dynamics"] = args.dynamics
    else:
        fixed["dynamics"] = args.dynamics[0]
    if args.max_rounds is not None:
        fixed["max_rounds"] = args.max_rounds
    graph_sweep = args.graph is not None
    adversarial = args.adversary is not None
    if args.chain == "async":
        if graph_sweep:
            raise ConfigurationError(
                "--chain async runs on the complete graph; drop "
                "--graph or use --chain sync"
            )
        fixed["engine"] = "async"
    if graph_sweep:
        fixed["graph"] = args.graph
        fixed["graph_seed"] = args.graph_seed
        if args.edge_probability is not None:
            fixed["edge_probability"] = args.edge_probability
        if args.degree:
            if len(args.degree) > 1:
                grid["degree"] = args.degree
            else:
                fixed["degree"] = args.degree[0]
    elif args.degree or args.edge_probability is not None:
        raise ConfigurationError(
            "--degree/--edge-probability require --graph NAME"
        )
    if adversarial:
        if not args.adversary_budget:
            raise ConfigurationError(
                "--adversary requires --adversary-budget F [F...]"
            )
        fixed["adversary"] = args.adversary
        if len(args.adversary_budget) > 1:
            grid["adversary_budget"] = args.adversary_budget
        else:
            fixed["adversary_budget"] = args.adversary_budget[0]
    elif args.adversary_budget:
        raise ConfigurationError(
            "--adversary-budget requires --adversary NAME"
        )
    if args.backend:
        # Validate eagerly so a submitted job never fails deep inside a
        # worker: naming an uninstalled backend is a CLI error here.
        for name in args.backend:
            if name != AUTO_BACKEND and not backend_available(name):
                raise BackendUnavailableError(
                    name,
                    getattr(
                        get_backend(name, require_available=False),
                        "unavailable_reason",
                        "",
                    ),
                )
        if len(args.backend) > 1:
            grid["backend"] = args.backend
        else:
            fixed["backend"] = args.backend[0]
    return grid, fixed


def _sweep(args) -> int:
    from repro.analysis.tables import format_table
    from repro.sweep import SweepSpec, run_sweep

    graph_sweep = args.graph is not None
    adversarial = args.adversary is not None
    try:
        grid, fixed = _grid_from_args(args)
        spec = SweepSpec(
            grid=grid, num_runs=args.runs, seed=args.seed, fixed=fixed
        )
        started = time.perf_counter()
        points = run_sweep(
            spec,
            cache_dir=args.cache,
            workers=args.workers,
            measure=args.measure,
        )
    except (
        BackendUnavailableError,
        ConfigurationError,
        GraphError,
    ) as exc:
        # GraphError surfaces from substrate construction inside the
        # sweep (e.g. random-regular without --degree); all three are
        # user misconfiguration / environment gaps, not crashes.
        print(f"error: {exc}")
        return 2
    wall = time.perf_counter() - started
    headers = ["dynamics", "n", "k", "median T", "censored", "runs"]
    rows = [
        [
            point.params["dynamics"],
            point.params["n"],
            point.params["k"],
            point.median,
            point.censored,
            len(point.values),
        ]
        for point in points
    ]
    if adversarial:
        headers.insert(3, "F")
        for row, point in zip(rows, points):
            row.insert(3, point.params["adversary_budget"])
    if graph_sweep and "degree" in grid:
        headers.insert(3, "degree")
        for row, point in zip(rows, points):
            row.insert(3, point.params["degree"])
    title = (
        f"Consensus-time sweep ({len(points)} points, "
        f"{args.runs} runs each, seed={args.seed}"
        + (f", adversary={args.adversary}" if adversarial else "")
        + (f", graph={args.graph}" if graph_sweep else "")
        + (", chain=async" if args.chain == "async" else "")
        + (
            ", measure=sequential"
            if args.measure == "sequential"
            else ""
        )
        + ")"
    )
    print(format_table(headers, rows, title=title))
    print(f"elapsed: {wall:.2f}s wall-clock")
    return 0


def _serve(args) -> int:
    from repro.service import QuotaPolicy, SimulationService

    try:
        quota = QuotaPolicy(
            max_jobs=args.quota_jobs,
            max_points=args.quota_points,
            max_points_per_job=args.quota_points_per_job,
        )
        service = SimulationService(
            args.db,
            cache_dir=args.cache,
            host=args.host,
            port=args.port,
            num_workers=args.fleet,
            quota=quota,
            job_timeout=args.job_timeout,
            max_retries=args.max_retries,
        )
        service.start()
    except (ConfigurationError, OSError) as exc:
        print(f"error: {exc}")
        return 2
    if service.requeued_orphans:
        print(
            f"re-queued {service.requeued_orphans} orphaned running "
            "job(s) from a previous process"
        )
    # The URL line is machine-read by the smoke tests and quickstart
    # scripts (--port 0 binds an ephemeral port only we know).
    print(
        f"serving on {service.url} "
        f"(db={args.db}, cache={args.cache}, workers={args.fleet})",
        flush=True,
    )
    try:
        while True:
            time.sleep(3600)
    except KeyboardInterrupt:
        print("draining...", flush=True)
    finally:
        service.shutdown()
    return 0


def _print_result_points(payload: dict) -> None:
    from repro.analysis.tables import format_table

    points = payload["points"]
    failed = sum(1 for point in points if point["error"] is not None)
    headers = ["dynamics", "n", "k", "median T", "censored", "runs", "error"]
    rows = [
        [
            point["params"].get("dynamics", "?"),
            point["params"].get("n", "?"),
            point["params"].get("k", "?"),
            "-" if point["median"] is None else point["median"],
            point["censored"],
            len(point["values"]),
            point["error"] or "",
        ]
        for point in points
    ]
    title = (
        f"Job {payload['id']}: {len(points)} points"
        + (f", {failed} failed" if failed else "")
    )
    print(format_table(headers, rows, title=title))


def _submit(args) -> int:
    from repro.errors import ReproError
    from repro.service import ServiceClient

    client = ServiceClient(args.url, client_id=args.client)
    try:
        grid, fixed = _grid_from_args(args)
        job_id = client.submit(
            {
                "grid": grid,
                "fixed": fixed,
                "num_runs": args.runs,
                "seed": args.seed,
                "measure": args.measure,
            },
            priority=args.priority,
        )
    except ReproError as exc:
        print(f"error: {exc}")
        return 2
    print(f"submitted job {job_id}")
    if not args.wait:
        print(
            f"poll with: repro status --url {args.url} {job_id}"
        )
        return 0
    return _poll_and_print(client, job_id, args.timeout)


def _status(args) -> int:
    from repro.errors import ReproError
    from repro.service import ServiceClient

    try:
        status = ServiceClient(args.url).status(args.job_id)
    except ReproError as exc:
        print(f"error: {exc}")
        return 2
    progress = status["progress"]
    print(
        f"job {status['id']}: {status['state']} "
        f"({progress['done_points']}/{progress['total_points']} points, "
        f"client={status['client']}, priority={status['priority']}, "
        f"attempts={status['attempts']})"
    )
    if status["error"]:
        print(f"last error: {status['error']}")
    return 0 if status["state"] != "failed" else 1


def _result(args) -> int:
    from repro.errors import ReproError
    from repro.service import ServiceClient

    client = ServiceClient(args.url)
    if args.wait:
        return _poll_and_print(client, args.job_id, args.timeout)
    try:
        payload = client.result(args.job_id)
    except ReproError as exc:
        print(f"error: {exc}")
        return 2
    _print_result_points(payload)
    return 0


def _jobs(args) -> int:
    from repro.errors import ReproError
    from repro.service import ServiceClient

    client = ServiceClient(args.url)
    state = "dead" if args.dead else args.state
    if args.dead and args.state not in (None, "dead"):
        print("error: --dead conflicts with --state "
              f"{args.state!r}")
        return 2
    try:
        if args.requeue:
            for job_id in args.requeue:
                payload = client.requeue(job_id)
                print(
                    f"requeued job {payload['id']} "
                    f"(state={payload['state']})"
                )
            return 0
        rows = client.jobs(state=state, client_id=args.client)
    except ReproError as exc:
        print(f"error: {exc}")
        return 2
    if not rows:
        print("no jobs match")
        return 0
    for job in rows:
        progress = job["progress"]
        line = (
            f"{job['id']}  {job['state']:9s} "
            f"{progress['done_points']}/{progress['total_points']} pts  "
            f"client={job['client']} attempts={job['attempts']}"
        )
        if job.get("error"):
            line += f"  error: {job['error']}"
        print(line)
    dead_count = sum(1 for job in rows if job["state"] == "dead")
    if dead_count and not args.dead:
        print(
            f"{dead_count} dead job(s); requeue with: repro jobs "
            f"--url {args.url} --requeue <JOB_ID>"
        )
    return 0


def _chaos(args) -> int:
    from pathlib import Path

    from repro.errors import ReproError
    from repro.faults import FaultPlan, run_chaos

    try:
        if args.plan_file is not None:
            plan = FaultPlan.from_json(
                Path(args.plan_file).read_text()
            )
        else:
            plan = args.plan
        report = run_chaos(
            plan,
            seed=args.seed,
            jobs=args.jobs,
            clients=args.clients,
            workers=args.workers,
            max_retries=args.max_retries,
            base_dir=args.dir,
            keep=args.keep,
            baseline=not args.no_baseline,
            timeout=args.timeout,
        )
    except (ReproError, OSError) as exc:
        print(f"error: {exc}")
        return 2
    print(report.render())
    if args.keep and args.dir:
        print(f"artefacts kept under {args.dir}")
    return 0 if report.ok else 1


def _poll_and_print(client, job_id: str, timeout: float) -> int:
    from repro.errors import ServiceError

    try:
        payload = client.wait(job_id, timeout=timeout)
    except (ServiceError, TimeoutError) as exc:
        print(f"error: {exc}")
        return 1
    _print_result_points(payload)
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
