"""Initial opinion configurations.

Every generator returns an int64 count vector summing to ``n``.  The
paper's theorems condition on properties of the initial configuration —
``gamma_0`` (Theorems 2.1, 2.2), the leader's margin (Theorem 2.6), or
exact balance (Theorem 2.7) — so the generators here give precise control
over those quantities.
"""

from __future__ import annotations

import numpy as np

from repro.seeding import RandomState, as_generator
from repro.state import gamma_from_counts, validate_counts
from repro.errors import ConfigurationError

__all__ = [
    "balanced",
    "biased",
    "custom",
    "dirichlet_random",
    "geometric_gamma",
    "two_block",
    "zipf",
]


def _check_nk(n: int, k: int) -> None:
    if k < 1:
        raise ConfigurationError(f"k must be at least 1, got {k}")
    if n < k:
        raise ConfigurationError(
            f"need n >= k so every opinion can have a supporter "
            f"(validity condition); got n={n}, k={k}"
        )


def balanced(n: int, k: int) -> np.ndarray:
    """The (near-)balanced configuration: ``|c_i - n/k| <= 1``.

    This is the worst case for consensus (Theorem 2.7's lower-bound
    configuration has exactly ``alpha_i = 1/k``); when ``k`` does not
    divide ``n`` the first ``n mod k`` opinions get the extra vertex.
    """
    _check_nk(n, k)
    base, extra = divmod(n, k)
    counts = np.full(k, base, dtype=np.int64)
    counts[:extra] += 1
    return counts


def biased(n: int, k: int, margin: float) -> np.ndarray:
    """Balanced except opinion 0 leads every other by ``~margin * n``.

    The margin is expressed as a fraction of ``n``: the configuration is
    the balanced one with ``round(margin * n)`` vertices moved onto
    opinion 0, drawn as evenly as possible from the others.  This is the
    natural input for Theorem 2.6 (plurality consensus), whose condition
    reads ``alpha_0(1) - alpha_0(j) >= C sqrt(log n / n)``.

    Validity (every opinion keeps at least one supporter) caps what each
    donor can give; when the even split exceeds some donor's slack the
    shortfall is redistributed over donors that still have mass, so the
    requested margin is delivered exactly whenever it is achievable.  A
    margin no donor set can fund (``move > n - counts[0] - (k - 1)``)
    raises :class:`~repro.errors.ConfigurationError` instead of silently
    delivering a smaller lead.
    """
    _check_nk(n, k)
    if not 0.0 <= margin <= 1.0:
        raise ConfigurationError(
            f"margin must be a fraction of n in [0, 1], got {margin}"
        )
    counts = balanced(n, k)
    move = int(round(margin * n))
    if k == 1 or move == 0:
        return counts
    donors = np.arange(1, k)
    slack = counts[donors] - 1  # keep validity: every donor stays alive
    available = int(slack.sum())
    if move > available:
        raise ConfigurationError(
            f"margin={margin} asks to move {move} vertices onto opinion "
            f"0 but the {k - 1} donors only have {available} to give "
            "while keeping every opinion alive (validity); the largest "
            f"achievable margin at n={n}, k={k} is {available / n:.4g}"
        )
    # Even split plus remainder, capped per donor by its slack; any
    # shortfall is redistributed over donors that still have mass (each
    # pass moves at least one vertex, so this terminates).
    per_donor, rem = divmod(move, k - 1)
    take = np.full(k - 1, per_donor, dtype=np.int64)
    take[:rem] += 1
    take = np.minimum(take, slack)
    shortfall = move - int(take.sum())
    while shortfall > 0:
        open_donors = np.flatnonzero(take < slack)
        per_donor, rem = divmod(shortfall, open_donors.size)
        extra = np.full(open_donors.size, per_donor, dtype=np.int64)
        extra[:rem] += 1
        extra = np.minimum(
            extra, slack[open_donors] - take[open_donors]
        )
        take[open_donors] += extra
        shortfall -= int(extra.sum())
    counts[donors] -= take
    counts[0] += move
    return counts


def two_block(n: int, k: int, leader_fraction: float) -> np.ndarray:
    """Opinion 0 holds ``leader_fraction`` of the mass, rest balanced.

    Gives direct control over ``gamma_0 ~ leader_fraction^2`` for the
    Theorem 2.1 experiments.
    """
    _check_nk(n, k)
    if not 0.0 < leader_fraction < 1.0:
        raise ConfigurationError(
            f"leader_fraction must be in (0, 1), got {leader_fraction}"
        )
    lead = int(round(leader_fraction * n))
    lead = min(max(lead, 1), n - (k - 1))
    rest = balanced(n - lead, k - 1) if k > 1 else np.zeros(0, np.int64)
    return np.concatenate([[lead], rest]).astype(np.int64)


def zipf(
    n: int, k: int, exponent: float = 1.0
) -> np.ndarray:
    """Deterministic Zipf-profile configuration: ``c_i ∝ (i+1)^-exponent``.

    A realistic heavy-tailed opinion landscape (e.g. candidate popularity
    in plurality voting).  Rounding preserves the total and keeps every
    opinion alive.
    """
    _check_nk(n, k)
    if exponent < 0:
        raise ConfigurationError(
            f"exponent must be non-negative, got {exponent}"
        )
    weights = (np.arange(1, k + 1, dtype=np.float64)) ** (-exponent)
    raw = weights / weights.sum() * (n - k)
    counts = np.floor(raw).astype(np.int64) + 1  # +1 keeps validity
    deficit = n - int(counts.sum())
    order = np.argsort(raw - np.floor(raw))[::-1]
    counts[order[:deficit]] += 1
    return counts


def dirichlet_random(
    n: int, k: int, concentration: float = 1.0, seed: RandomState = None
) -> np.ndarray:
    """Random configuration with Dirichlet(concentration) proportions.

    ``concentration -> infinity`` approaches balanced; small values give
    highly skewed starts.  Sampling is multinomial on top of the drawn
    proportions, then patched to keep every opinion alive (validity).
    """
    _check_nk(n, k)
    if concentration <= 0:
        raise ConfigurationError(
            f"concentration must be positive, got {concentration}"
        )
    rng = as_generator(seed)
    proportions = rng.dirichlet(np.full(k, concentration))
    counts = rng.multinomial(n - k, proportions).astype(np.int64) + 1
    return counts


def geometric_gamma(n: int, k: int, gamma_target: float) -> np.ndarray:
    """A configuration whose ``gamma_0`` approximates ``gamma_target``.

    Theorems 2.1 and 2.2 are parameterised by ``gamma_0``; this generator
    inverts the relation by putting one leader at
    ``alpha ~ sqrt(gamma_target - (1 - alpha)^2 / (k - 1))`` ... solved
    numerically: a two-block profile ``(a, (1-a)/(k-1), ...)`` has
    ``gamma(a) = a^2 + (1 - a)^2 / (k - 1)``, which is increasing in
    ``a`` above ``1/k``, so a bisection on ``a`` hits any target in
    ``[1/k, 1)``.
    """
    _check_nk(n, k)
    if k == 1:
        return np.asarray([n], dtype=np.int64)
    lo_gamma = 1.0 / k
    if not lo_gamma <= gamma_target < 1.0:
        raise ConfigurationError(
            f"gamma_target must lie in [1/k, 1) = [{lo_gamma:.3g}, 1), "
            f"got {gamma_target}"
        )

    def gamma_of(a: float) -> float:
        return a * a + (1.0 - a) ** 2 / (k - 1)

    lo, hi = 1.0 / k, 1.0 - 1e-12
    for _ in range(80):
        mid = 0.5 * (lo + hi)
        if gamma_of(mid) < gamma_target:
            lo = mid
        else:
            hi = mid
    counts = two_block(n, k, max(lo, 1.0 / k + 1e-12))
    return counts


def custom(counts) -> np.ndarray:
    """Validate and return a caller-supplied count vector."""
    return validate_counts(counts).copy()


def achieved_gamma(counts: np.ndarray) -> float:
    """Convenience re-export: ``gamma_0`` of a configuration."""
    return gamma_from_counts(counts)
