"""Initial-configuration generators keyed to the paper's hypotheses."""

from repro.configs.initial import (
    balanced,
    biased,
    custom,
    dirichlet_random,
    geometric_gamma,
    two_block,
    zipf,
)

__all__ = [
    "balanced",
    "biased",
    "custom",
    "dirichlet_random",
    "geometric_gamma",
    "two_block",
    "zipf",
]
