"""Canonical JSON and content hashing for provenance artefacts.

Chain integrity only works if every party — the writer stamping a
manifest, a verifier replaying it years later, possibly on a different
platform — serialises the same value to the same bytes.  The canonical
form pins everything ``json.dumps`` leaves open:

* keys sorted at every nesting level,
* compact separators (no whitespace to disagree about),
* ``ensure_ascii=False`` (UTF-8 bytes, not escape-sequence spellings),
* ``allow_nan=False`` — NaN/Infinity are *rejected*, not serialised:
  their JSON spellings are non-standard and their semantics
  (``NaN != NaN``) make a "same value, same hash" contract impossible.

Hashes are SHA-256 hex digests over the UTF-8 encoding of that form.
The same discipline as SNIPPETS' audit-chain verifier, so manifests
written by one process verify byte-for-byte in another.
"""

from __future__ import annotations

import hashlib
import json

from repro.errors import ProvenanceError

__all__ = ["canon_hash", "canonical_json", "hash_bytes"]


def canonical_json(value) -> str:
    """Serialise ``value`` into its unique canonical JSON form.

    Only JSON-native types (dict/list/str/int/float/bool/None) are
    accepted; non-finite floats and unserialisable objects raise
    :class:`~repro.errors.ProvenanceError` — a hash over a value with
    no canonical form would be unverifiable.
    """
    try:
        return json.dumps(
            value,
            sort_keys=True,
            separators=(",", ":"),
            ensure_ascii=False,
            allow_nan=False,
        )
    except (TypeError, ValueError) as exc:
        raise ProvenanceError(
            f"value has no canonical JSON form: {exc}"
        ) from exc


def canon_hash(value) -> str:
    """SHA-256 hex digest of ``value``'s canonical JSON form."""
    return hashlib.sha256(
        canonical_json(value).encode("utf-8")
    ).hexdigest()


def hash_bytes(data: bytes) -> str:
    """SHA-256 hex digest of raw payload bytes.

    Payload files (sweep points, ``BENCH_*.json``) are hashed as the
    exact bytes on disk, *not* re-canonicalised: the manifest attests
    to the artefact the writer produced, so any later byte flip — even
    a semantically neutral whitespace edit — is a detectable tamper.
    """
    return hashlib.sha256(data).hexdigest()
