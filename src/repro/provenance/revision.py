"""Source-revision lookup for provenance manifests.

Manifests stamp the git SHA the artefact was produced at, so a cached
number can be tied back to the exact code revision.  Outside a git
checkout (installed package, stripped CI artefact) the SHA is simply
``None`` — absence of provenance detail is recorded honestly rather
than guessed.
"""

from __future__ import annotations

import functools
import subprocess
from pathlib import Path

__all__ = ["git_revision"]


@functools.lru_cache(maxsize=8)
def _revision_of(directory: str) -> str | None:
    try:
        return (
            subprocess.run(
                ["git", "rev-parse", "HEAD"],
                cwd=directory,
                capture_output=True,
                text=True,
                check=True,
                timeout=10,
            ).stdout.strip()
            or None
        )
    except Exception:
        return None


def git_revision(start: str | Path | None = None) -> str | None:
    """Current commit SHA of the checkout containing ``start``.

    ``start`` defaults to the installed :mod:`repro` package source, so
    sweep-point manifests record the revision of the *code*, not of
    whatever directory the cache happens to live in.  Returns ``None``
    outside a git checkout.  Memoised per directory — manifests are
    stamped once per point, and a subprocess per point would dominate
    small sweeps.
    """
    if start is None:
        start = Path(__file__).parent
    return _revision_of(str(Path(start)))
