"""Verifiable provenance: hash-chained manifests for result artefacts.

Every sweep-cache point and every ``benchmarks/out/BENCH_*.json`` is
attested by a canonical-JSON manifest (payload hash, spec hash, git
SHA, backend, engine, seed) appended to a per-directory hash chain;
``repro verify <dir>`` replays the chain and fails non-zero on any
broken link, tampered payload or orphaned manifest.  See
:mod:`repro.provenance.chain` for the chain layout and
:mod:`repro.provenance.canonical` for the serialisation rules.
"""

from repro.provenance.canonical import (
    canon_hash,
    canonical_json,
    hash_bytes,
)
from repro.provenance.chain import (
    MANIFEST_SCHEMA,
    PROVENANCE_DIRNAME,
    ChainReport,
    chain_hash,
    genesis_root,
    record_artifact,
    verify_chain,
)
from repro.provenance.revision import git_revision

__all__ = [
    "ChainReport",
    "MANIFEST_SCHEMA",
    "PROVENANCE_DIRNAME",
    "canon_hash",
    "canonical_json",
    "chain_hash",
    "genesis_root",
    "git_revision",
    "hash_bytes",
    "record_artifact",
    "verify_chain",
]
