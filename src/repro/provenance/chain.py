"""Hash-chained manifest ledger for result directories.

Every directory of managed artefacts (a sweep cache, ``benchmarks/out``)
grows a ``provenance/`` subdirectory of manifests, one per payload
write, named ``manifest-<seq>.json``.  A manifest records *what* was
written (payload filename and the SHA-256 of its exact bytes), *how* it
was produced (a free-form ``context``: spec hash, git SHA, backend,
engine, seed entropy), and *where it sits in history*:

``prev_chain_root``
    The chain root of the previous manifest (the genesis root for the
    first entry).
``chain_root``
    ``chain_hash(prev_chain_root, canon_hash(entry-sans-chain_root))``
    — so every entry's root commits to the entire history before it,
    exactly like the audit-chain idiom this module is patterned on.

Tampering with any payload byte, any manifest field, or the order or
presence of manifests therefore breaks verification at a *nameable*
first link.

Concurrent writers (service worker threads, separate resuming
processes) are linearised without locks: a manifest is written to a
hidden temp file and published with ``os.link`` — an atomic
create-with-content that fails on an existing target — and a writer
that loses the race simply re-reads the head and retries with the next
sequence number.  Re-writing a payload (a raced sweep point, a
re-measured benchmark) appends a *new* manifest; verification checks
the payload's bytes against its most recent manifest and keeps the
older entries as history.
"""

from __future__ import annotations

import hashlib
import json
import os
import re
import tempfile
from dataclasses import dataclass, field
from pathlib import Path

from repro.errors import ProvenanceError
from repro.provenance.canonical import (
    canon_hash,
    canonical_json,
    hash_bytes,
)

__all__ = [
    "ChainReport",
    "MANIFEST_SCHEMA",
    "PROVENANCE_DIRNAME",
    "chain_hash",
    "genesis_root",
    "record_artifact",
    "verify_chain",
]

#: Schema identifier stamped on (and demanded of) every manifest.
MANIFEST_SCHEMA = "repro-provenance/v1"

#: Name of the per-directory subdirectory holding the manifest chain.
PROVENANCE_DIRNAME = "provenance"

_MANIFEST_RE = re.compile(r"^manifest-(\d{6})\.json$")

#: Payload files the chain manages: JSON documents directly inside the
#: chained directory.  CSV exports, hidden/temp files and
#: subdirectories are outside the attestation boundary.
_PAYLOAD_GLOB = "*.json"


def genesis_root() -> str:
    """Chain root before any entry: the hash of the schema identifier."""
    return hashlib.sha256(MANIFEST_SCHEMA.encode("utf-8")).hexdigest()


def chain_hash(prev_root: str, entry_hash: str) -> str:
    """Fold one entry hash into the running chain root."""
    return hashlib.sha256(
        f"{prev_root}:{entry_hash}".encode("utf-8")
    ).hexdigest()


def _manifest_path(chain_dir: Path, seq: int) -> Path:
    return chain_dir / f"manifest-{seq:06d}.json"


def _chain_head(chain_dir: Path) -> tuple[int, str]:
    """Highest committed sequence number and its chain root.

    An unreadable head raises :class:`~repro.errors.ProvenanceError`:
    appending past a corrupt entry would silently fork history, so the
    writer fails loudly and ``repro verify`` names the broken link.
    """
    head_seq = 0
    for entry in chain_dir.iterdir():
        match = _MANIFEST_RE.match(entry.name)
        if match:
            head_seq = max(head_seq, int(match.group(1)))
    if head_seq == 0:
        return 0, genesis_root()
    head_path = _manifest_path(chain_dir, head_seq)
    try:
        head = json.loads(head_path.read_text(encoding="utf-8"))
        root = head["chain_root"]
    except (OSError, ValueError, KeyError, TypeError) as exc:
        raise ProvenanceError(
            f"provenance chain head {head_path} is unreadable "
            f"({type(exc).__name__}: {exc}); run 'repro verify' on "
            f"{chain_dir.parent} to locate the damage"
        ) from exc
    if not isinstance(root, str):
        raise ProvenanceError(
            f"provenance chain head {head_path} has a non-string "
            "chain_root"
        )
    return head_seq, root


def record_artifact(
    payload_path: str | Path,
    *,
    kind: str,
    context: dict | None = None,
) -> dict:
    """Append one manifest for ``payload_path`` to its directory's chain.

    Hashes the payload's current bytes, links the new entry to the
    chain head and commits it with an atomic exclusive create; on a
    lost race the head is re-read and the append retried under the next
    sequence number, so concurrent writers (worker threads, separate
    resuming processes) each land exactly one entry.  Returns the
    committed manifest document.

    ``context`` must be canonically serialisable (JSON-native, finite
    floats); it is the writer's attestation of how the payload was
    produced — spec hash, git SHA, backend, engine, seed.
    """
    payload_path = Path(payload_path)
    data = payload_path.read_bytes()
    chain_dir = payload_path.parent / PROVENANCE_DIRNAME
    chain_dir.mkdir(parents=True, exist_ok=True)
    base = {
        "schema": MANIFEST_SCHEMA,
        "kind": str(kind),
        "payload": payload_path.name,
        "payload_sha256": hash_bytes(data),
        "context": dict(context or {}),
    }
    while True:
        head_seq, prev_root = _chain_head(chain_dir)
        entry = dict(base, seq=head_seq + 1, prev_chain_root=prev_root)
        entry["chain_root"] = chain_hash(prev_root, canon_hash(entry))
        document = canonical_json(entry)
        target = _manifest_path(chain_dir, head_seq + 1)
        # Two-step commit: the full document lands in a hidden temp
        # file first (dot-prefixed, so readers never parse it), then
        # os.link publishes it under the sequence-numbered name — an
        # atomic create-with-content that still fails on an existing
        # target, so a concurrent head reader can never observe a
        # half-written manifest.
        handle, temp_name = tempfile.mkstemp(
            dir=chain_dir, prefix=".manifest-", suffix=".tmp"
        )
        try:
            with os.fdopen(handle, "w", encoding="utf-8") as stream:
                stream.write(document)
            try:
                os.link(temp_name, target)
            except FileExistsError:
                # Lost the append race: another writer committed this
                # sequence number first.  Chain from the new head.
                continue
            return entry
        finally:
            os.unlink(temp_name)


@dataclass
class ChainReport:
    """Outcome of replay-verifying one directory's manifest chain.

    ``errors`` is ordered: chain-walk failures come first, in sequence
    order, so ``first_broken`` names the earliest broken link — the
    property the tamper tests pin down.
    """

    directory: str
    entries: int = 0
    payloads: int = 0
    errors: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.errors

    @property
    def first_broken(self) -> str | None:
        """The first verification failure, or ``None`` when intact."""
        return self.errors[0] if self.errors else None

    def render(self) -> str:
        if self.ok:
            return (
                f"ok: {self.directory} ({self.entries} manifest(s), "
                f"{self.payloads} payload(s) attested)"
            )
        lines = [
            f"BROKEN: {self.directory} "
            f"({len(self.errors)} verification error(s))"
        ]
        lines.extend(f"  - {error}" for error in self.errors)
        return "\n".join(lines)


def _load_manifests(
    chain_dir: Path, report: ChainReport
) -> dict[int, tuple[Path, dict | None]]:
    """Parse every manifest file, recording structural problems.

    Returns ``{seq: (path, entry-or-None)}``; unparseable entries map
    to ``None`` so the chain walk can still name them as the broken
    link at their position.
    """
    manifests: dict[int, tuple[Path, dict | None]] = {}
    for entry_path in sorted(chain_dir.iterdir()):
        if entry_path.name.startswith("."):
            continue
        match = _MANIFEST_RE.match(entry_path.name)
        if not match:
            report.errors.append(
                f"unrecognised file in provenance directory: "
                f"{entry_path.name}"
            )
            continue
        seq = int(match.group(1))
        try:
            document = json.loads(entry_path.read_text(encoding="utf-8"))
            if not isinstance(document, dict):
                raise ValueError("manifest is not a JSON object")
        except (OSError, ValueError):
            manifests[seq] = (entry_path, None)
            continue
        manifests[seq] = (entry_path, document)
    return manifests


def _walk_chain(
    manifests: dict[int, tuple[Path, dict | None]],
    report: ChainReport,
) -> None:
    """Replay the chain from genesis; stop at the first broken link.

    Later entries chain *through* a broken one, so continuing past the
    first failure would only cascade one root mismatch into dozens —
    the first link names the damage.
    """
    prev_root = genesis_root()
    for expected_seq in range(1, max(manifests, default=0) + 1):
        if expected_seq not in manifests:
            report.errors.append(
                f"missing manifest seq {expected_seq} "
                "(gap in the chain)"
            )
            return
        path, entry = manifests[expected_seq]
        if entry is None:
            report.errors.append(
                f"manifest {path.name} is unreadable (corrupt JSON)"
            )
            return
        if entry.get("schema") != MANIFEST_SCHEMA:
            report.errors.append(
                f"manifest {path.name} has unknown schema "
                f"{entry.get('schema')!r}"
            )
            return
        if entry.get("seq") != expected_seq:
            report.errors.append(
                f"manifest {path.name} declares seq "
                f"{entry.get('seq')!r}, expected {expected_seq}"
            )
            return
        if entry.get("prev_chain_root") != prev_root:
            report.errors.append(
                f"manifest {path.name} does not link to its "
                f"predecessor: prev_chain_root mismatch"
            )
            return
        body = {
            key: value
            for key, value in entry.items()
            if key != "chain_root"
        }
        try:
            expected_root = chain_hash(prev_root, canon_hash(body))
        except ProvenanceError as exc:
            report.errors.append(
                f"manifest {path.name} cannot be re-hashed: {exc}"
            )
            return
        if entry.get("chain_root") != expected_root:
            report.errors.append(
                f"manifest {path.name} is tampered: recorded "
                f"chain_root does not match its recomputed content "
                f"hash"
            )
            return
        prev_root = expected_root
        report.entries += 1


def _check_payloads(
    directory: Path,
    manifests: dict[int, tuple[Path, dict | None]],
    report: ChainReport,
) -> None:
    """Match every payload against its most recent manifest, and back.

    A payload may be legitimately rewritten (raced sweep point,
    re-measured benchmark) — each rewrite appends a manifest, so only
    the *latest* entry per payload must match the bytes on disk;
    earlier entries are history.  Both directions are checked: a
    manifest whose payload vanished is an orphan, and a managed payload
    with no manifest at all escaped the attestation boundary.
    """
    latest: dict[str, dict] = {}
    for seq in sorted(manifests):
        _, entry = manifests[seq]
        if entry is None:
            continue
        name = entry.get("payload")
        if isinstance(name, str) and "/" not in name and name:
            latest[name] = entry
    for name in sorted(latest):
        entry = latest[name]
        payload_path = directory / name
        if not payload_path.exists():
            report.errors.append(
                f"orphaned manifest (seq {entry.get('seq')}): payload "
                f"{name} is missing"
            )
            continue
        digest = hash_bytes(payload_path.read_bytes())
        if digest != entry.get("payload_sha256"):
            report.errors.append(
                f"payload {name} does not match its manifest "
                f"(seq {entry.get('seq')}): bytes were modified after "
                "the chain attested them"
            )
            continue
        report.payloads += 1
    for payload_path in sorted(directory.glob(_PAYLOAD_GLOB)):
        if not payload_path.is_file():
            continue
        if payload_path.name.startswith("."):
            continue
        if payload_path.name not in latest:
            report.errors.append(
                f"payload {payload_path.name} has no provenance "
                "manifest"
            )


def verify_chain(directory: str | Path) -> ChainReport:
    """Replay-verify one directory's manifest chain end to end.

    Checks, in order: the chain itself (contiguous sequence numbers,
    every entry re-hashing to its recorded ``chain_root``, every link's
    ``prev_chain_root`` matching its predecessor), then payload
    integrity (latest manifest per payload matches the bytes on disk,
    no orphaned manifests) and coverage (every managed ``*.json``
    payload carries a manifest).  A directory with neither manifests
    nor managed payloads verifies vacuously — an empty chain is a
    valid chain.  Never raises on damaged input: all failures land on
    the returned :class:`ChainReport`, first broken link first.
    """
    directory = Path(directory)
    report = ChainReport(directory=str(directory))
    if not directory.is_dir():
        report.errors.append(f"not a directory: {directory}")
        return report
    chain_dir = directory / PROVENANCE_DIRNAME
    if not chain_dir.is_dir():
        for payload_path in sorted(directory.glob(_PAYLOAD_GLOB)):
            if payload_path.is_file() and not payload_path.name.startswith(
                "."
            ):
                report.errors.append(
                    f"payload {payload_path.name} has no provenance "
                    "manifest (no provenance directory)"
                )
        return report
    manifests = _load_manifests(chain_dir, report)
    _walk_chain(manifests, report)
    _check_payloads(directory, manifests, report)
    return report
