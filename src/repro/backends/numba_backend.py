"""The optional numba JIT backend.

Numba is imported lazily, inside :meth:`NumbaBackend.is_available` /
the first kernel request — importing :mod:`repro.backends` (and hence
:mod:`repro`) never pulls numba in, so numpy-only environments pay
nothing.  When numba is missing the backend reports unavailable and
:func:`repro.backends.get_backend` raises
:class:`~repro.errors.BackendUnavailableError`; auto-detection skips it
silently (fail closed) and lands on the ``numpy`` reference backend.

The JIT-compiled loop bodies live in
:mod:`repro.backends.numba_kernels`; this module owns the thin Python
wrappers that adapt them to the dispatch-point signatures (allocating
outputs, drawing the per-call seed/uniforms from the caller's NumPy
``Generator``, coercing dtypes).  See the kernels module docstring for
the RNG/determinism contract.
"""

from __future__ import annotations

from collections.abc import Callable

import numpy as np

from repro.backends.numba_kernels import KERNEL_NAMES, build_kernels
from repro.seeding import as_generator

__all__ = ["NumbaBackend"]


def _draw_seed(rng: np.random.Generator) -> np.uint64:
    """One 63-bit seed for a kernel's internal splitmix64 stream."""
    return np.uint64(rng.integers(0, np.int64(2**63 - 1), dtype=np.int64))


class NumbaBackend:
    """JIT backend: compiled ``prange`` kernels for the hot loops."""

    name = "numba"
    description = (
        "numba JIT kernels (parallel prange) for the measured hot "
        "loops; optional, requires the 'numba' package"
    )
    accelerates: frozenset[str] = KERNEL_NAMES

    def __init__(self) -> None:
        self._kernels: dict[str, Callable] | None = None
        self._wrappers: dict[str, Callable] | None = None
        self._import_error: str | None = None

    # -- availability ------------------------------------------------

    @property
    def unavailable_reason(self) -> str:
        return self._import_error or ""

    def is_available(self) -> bool:
        if self._kernels is not None:
            return True
        if self._import_error is not None:
            return False
        try:
            import numba  # noqa: F401  (lazy, optional dependency)
        except Exception as exc:  # pragma: no cover - import-time env
            self._import_error = f"{type(exc).__name__}: {exc}"
            return False
        return True

    def _compiled(self) -> dict[str, Callable]:
        if self._kernels is None:
            import numba

            self._kernels = build_kernels(numba.njit, numba.prange)
        return self._kernels

    def self_check(self) -> None:
        """Compile one kernel and verify it against a known answer.

        Auto-detection calls this before selecting numba, so a broken
        install (import works, compilation or threading layer does
        not) disqualifies the backend instead of poisoning every run.
        """
        fn = self._wrapper("majority_winners")
        samples = np.array([[1, 1, 2], [3, 2, 2], [5, 5, 5]], dtype=np.int64)
        winners = fn(samples, as_generator(0))
        if winners.tolist() != [1, 2, 5]:
            raise RuntimeError(
                f"numba majority_winners self-check produced {winners!r}"
            )

    # -- kernel wrappers ---------------------------------------------

    def kernel(self, name: str) -> Callable | None:
        if name not in KERNEL_NAMES or not self.is_available():
            return None
        return self._wrapper(name)

    def _wrapper(self, name: str) -> Callable:
        if self._wrappers is None:
            k = self._compiled()

            def majority_winners(
                samples: np.ndarray, rng: np.random.Generator
            ) -> np.ndarray:
                samples = np.ascontiguousarray(samples)
                out = np.empty(samples.shape[0], dtype=samples.dtype)
                k["majority_winners"](
                    samples, rng.random(samples.shape[0]), out
                )
                return out

            def hmajority_population_batch(
                counts: np.ndarray, h: int, rng: np.random.Generator
            ) -> np.ndarray:
                counts = np.ascontiguousarray(counts, dtype=np.int64)
                out = np.zeros_like(counts)
                k["hmajority_population_batch"](
                    counts, h, _draw_seed(rng), out
                )
                return out

            def csr_sample_gather(
                indptr: np.ndarray,
                indices: np.ndarray,
                opinions: np.ndarray,
                num_samples: int,
                rng: np.random.Generator,
                out: np.ndarray | None = None,
            ) -> np.ndarray:
                opinions = np.ascontiguousarray(opinions)
                if out is None:
                    out = np.empty(
                        (num_samples,) + opinions.shape,
                        dtype=opinions.dtype,
                    )
                k["csr_sample_gather"](
                    indptr, indices, opinions, _draw_seed(rng), out
                )
                return out

            def batch_categorical(
                probabilities: np.ndarray, rng: np.random.Generator
            ) -> np.ndarray:
                p = np.ascontiguousarray(probabilities, dtype=np.float64)
                out = np.empty(p.shape[0], dtype=np.int64)
                k["batch_categorical"](p, rng.random(p.shape[0]), out)
                return out

            def sample_holders(
                counts: np.ndarray, num_samples: int, rng: np.random.Generator
            ) -> np.ndarray:
                counts = np.ascontiguousarray(counts, dtype=np.int64)
                totals = counts.sum(axis=1, keepdims=True)
                # Same Generator call as the reference path, so the
                # result is bitwise-identical given the same rng state.
                draws = rng.integers(
                    0, totals, size=(counts.shape[0], num_samples)
                )
                out = np.empty_like(draws)
                k["sample_holders"](counts, draws, out)
                return out

            self._wrappers = {
                "majority_winners": majority_winners,
                "hmajority_population_batch": hmajority_population_batch,
                "csr_sample_gather": csr_sample_gather,
                "batch_categorical": batch_categorical,
                "sample_holders": sample_holders,
            }
        return self._wrappers[name]
