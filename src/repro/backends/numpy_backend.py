"""The always-available NumPy reference backend.

This backend accelerates nothing *by design*: every hot-path dispatch
point in :mod:`repro.core` and :mod:`repro.graphs` asks the active
backend for a kernel and, on ``None``, runs the vectorised NumPy code
that has been there since the batch-first refactor.  Keeping that code
in place (instead of moving it behind the backend) means there is
exactly one reference implementation, it is exercised by the entire
existing test suite, and selecting ``backend="numpy"`` is a guaranteed
no-op relative to the pre-backend behaviour.
"""

from __future__ import annotations

from collections.abc import Callable

__all__ = ["NumpyBackend"]


class NumpyBackend:
    """Reference backend: pure NumPy, zero dependencies, always on."""

    name = "numpy"
    description = (
        "vectorised NumPy reference paths (always available, default "
        "fallback)"
    )
    #: No named kernels: the inline reference code *is* this backend.
    accelerates: frozenset[str] = frozenset()

    def is_available(self) -> bool:
        return True

    def kernel(self, name: str) -> Callable | None:
        return None

    def self_check(self) -> None:
        return None
