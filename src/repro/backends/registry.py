"""String-keyed registry of compute backends.

Mirrors the engine registry (:mod:`repro.engine.registry`): backends are
registered under a short name with a zero-argument factory, looked up by
name, and enumerated for the CLI.  On top of that, this module owns the
three pieces of state the engine registry does not need:

``default_backend()``
    The process-wide default, resolved once and cached: the
    ``REPRO_BACKEND`` environment variable if set, otherwise fail-closed
    auto-detection (:func:`detect_backend`) — try candidates from the
    highest ``priority`` down, *verify* each one by running its
    ``self_check()``, and fall back to the always-available ``numpy``
    backend if every accelerated candidate fails to import, compile or
    produce correct output.

``active_backend()`` / ``use_backend()``
    A :mod:`contextvars`-based ambient backend.  Hot-path dispatch
    points (``majority_winners``, ``batch_categorical``, the fused CSR
    sampler, ...) consult :func:`active_backend` at call time, so a
    single ``with use_backend(...)`` around an engine run threads the
    choice through every kernel without touching call signatures.
    Context-variable scoping makes this safe per-thread *and* per-task:
    the service worker fleet can run jobs with different backends
    concurrently without interference.

Backend contract
----------------
A backend is any object satisfying :class:`ComputeBackend`:

``name`` / ``description``
    Identity and one-line human description for ``repro backends``.
``accelerates``
    Frozen set of kernel names the backend claims to provide — the
    capability flags.  The dispatch points only ask for kernels by
    these names, so the set doubles as machine-readable documentation.
``is_available()``
    Cheap availability probe (e.g. "does ``import numba`` work?").
    Must not raise.
``kernel(name)``
    Return the accelerated implementation for ``name`` or ``None`` to
    fall through to the NumPy reference path.  Returning ``None`` for
    everything is valid — that is exactly what the ``numpy`` backend
    does, which keeps the existing vectorised code as the single
    reference implementation.
``self_check()`` (optional)
    Raise if the backend cannot actually produce correct results
    (compilation failure, broken install).  Auto-detection runs this
    before selecting a backend; explicit selection trusts the user.
"""

from __future__ import annotations

import os
import threading
import warnings
from collections.abc import Callable, Iterator
from contextlib import contextmanager
from contextvars import ContextVar
from typing import Protocol, runtime_checkable

from repro.errors import BackendUnavailableError, ConfigurationError
from repro.faults import fault_point, faults_armed

__all__ = [
    "AUTO_BACKEND",
    "BACKEND_ENV_VAR",
    "ComputeBackend",
    "active_backend",
    "available_backends",
    "backend_available",
    "backend_kernel",
    "default_backend",
    "degraded_kernels",
    "detect_backend",
    "get_backend",
    "quarantine_kernel",
    "register_backend",
    "resolve_backend",
    "unregister_backend",
    "use_backend",
]

#: Environment variable naming the process-wide default backend.
BACKEND_ENV_VAR = "REPRO_BACKEND"

#: Sentinel spec value meaning "use the process default".
AUTO_BACKEND = "auto"


@runtime_checkable
class ComputeBackend(Protocol):
    """Structural interface every compute backend must satisfy."""

    name: str
    description: str
    accelerates: frozenset[str]

    def is_available(self) -> bool:  # pragma: no cover - protocol
        ...

    def kernel(self, name: str) -> Callable | None:  # pragma: no cover
        ...


_FACTORIES: dict[str, Callable[[], ComputeBackend]] = {}
_PRIORITIES: dict[str, int] = {}
_INSTANCES: dict[str, ComputeBackend] = {}

# Cache of resolved defaults keyed by the REPRO_BACKEND value in effect
# at resolution time ("" when unset), so tests that monkeypatch the
# environment see the change without global resets.
_DEFAULT_CACHE: dict[str, ComputeBackend] = {}

_ACTIVE: ContextVar[ComputeBackend | None] = ContextVar(
    "repro_active_backend", default=None
)


def register_backend(
    name: str,
    factory: Callable[[], ComputeBackend],
    *,
    priority: int = 0,
    replace: bool = False,
) -> None:
    """Register ``factory`` under ``name``.

    ``priority`` orders auto-detection (higher is preferred; the
    ``numpy`` reference backend registers at the lowest priority so any
    working accelerated backend wins).  Duplicate names raise
    :class:`ConfigurationError` unless ``replace=True``, matching
    :func:`repro.engine.registry.register_engine`.
    """
    if not name or not isinstance(name, str):
        raise ConfigurationError(
            f"backend name must be a non-empty string, got {name!r}"
        )
    if name == AUTO_BACKEND:
        raise ConfigurationError(
            f"backend name {AUTO_BACKEND!r} is reserved for auto-detection"
        )
    if name in _FACTORIES and not replace:
        raise ConfigurationError(
            f"backend {name!r} is already registered; pass replace=True "
            "to overwrite it"
        )
    _FACTORIES[name] = factory
    _PRIORITIES[name] = int(priority)
    _INSTANCES.pop(name, None)
    _DEFAULT_CACHE.clear()


def unregister_backend(name: str) -> None:
    """Remove ``name`` from the registry (primarily for tests)."""
    if name not in _FACTORIES:
        raise ConfigurationError(f"unknown backend {name!r}")
    del _FACTORIES[name]
    _PRIORITIES.pop(name, None)
    _INSTANCES.pop(name, None)
    _DEFAULT_CACHE.clear()


def available_backends() -> list[str]:
    """Sorted names of every registered backend (available or not)."""
    return sorted(_FACTORIES)


def _instantiate(name: str) -> ComputeBackend:
    if name not in _FACTORIES:
        known = ", ".join(available_backends()) or "none registered"
        raise ConfigurationError(
            f"unknown backend {name!r}; known backends: {known}"
        )
    if name not in _INSTANCES:
        _INSTANCES[name] = _FACTORIES[name]()
    return _INSTANCES[name]


def get_backend(name: str, *, require_available: bool = True) -> ComputeBackend:
    """Return the backend registered under ``name``.

    Unknown names raise :class:`ConfigurationError`; known-but-broken
    backends raise :class:`BackendUnavailableError` unless
    ``require_available=False`` (used by the CLI listing, which wants to
    describe unavailable backends rather than fail on them).
    """
    backend = _instantiate(name)
    if require_available and not backend.is_available():
        raise BackendUnavailableError(
            name, getattr(backend, "unavailable_reason", "") or ""
        )
    return backend


def backend_available(name: str) -> bool:
    """``True`` iff ``name`` is registered and its probe succeeds."""
    if name not in _FACTORIES:
        return False
    try:
        return _instantiate(name).is_available()
    except Exception:  # fail closed: a broken factory is "unavailable"
        return False


def detect_backend() -> ComputeBackend:
    """Pick the best *verified* backend, failing closed to ``numpy``.

    Candidates are tried from the highest registration priority down
    (ties broken by name for determinism).  A candidate is selected
    only if its factory runs, ``is_available()`` is true, and its
    ``self_check()`` (when defined) passes — anything else silently
    disqualifies it.  The ``numpy`` backend is always available, so
    detection always succeeds.
    """
    order = sorted(_FACTORIES, key=lambda n: (-_PRIORITIES.get(n, 0), n))
    fallback: ComputeBackend | None = None
    for name in order:
        try:
            backend = _instantiate(name)
            if not backend.is_available():
                continue
            check = getattr(backend, "self_check", None)
            if check is not None:
                check()
        except Exception:
            continue
        if _PRIORITIES.get(name, 0) <= 0:
            # Reference-tier backend: remember it, but keep scanning in
            # case a lower-priority-but-still-positive entry exists.
            if fallback is None:
                fallback = backend
            continue
        return backend
    if fallback is not None:
        return fallback
    raise ConfigurationError(
        "no usable compute backend registered (the built-in 'numpy' "
        "backend is missing — was it unregistered?)"
    )


def default_backend() -> ComputeBackend:
    """The process default: ``REPRO_BACKEND`` if set, else detection.

    An explicit environment override must work or fail loudly —
    pointing ``REPRO_BACKEND`` at a backend that cannot run raises
    :class:`BackendUnavailableError` rather than silently falling back,
    because a user who pinned the env var is relying on it.
    """
    env = os.environ.get(BACKEND_ENV_VAR, "").strip()
    cached = _DEFAULT_CACHE.get(env)
    if cached is not None:
        return cached
    if env and env != AUTO_BACKEND:
        backend = get_backend(env)
    else:
        backend = detect_backend()
    _DEFAULT_CACHE[env] = backend
    return backend


def resolve_backend(
    backend: ComputeBackend | str | None,
) -> ComputeBackend:
    """Normalise a spec-level backend value to a backend instance.

    ``None`` and ``"auto"`` resolve to :func:`default_backend`; a name
    resolves through :func:`get_backend` (raising on unknown or
    unavailable); a :class:`ComputeBackend` instance passes through.
    """
    if backend is None:
        return default_backend()
    if isinstance(backend, str):
        if backend == AUTO_BACKEND:
            return default_backend()
        return get_backend(backend)
    if isinstance(backend, ComputeBackend):
        return backend
    raise ConfigurationError(
        "backend must be a backend name, 'auto', None or a "
        f"ComputeBackend instance, got {type(backend).__name__}"
    )


def active_backend() -> ComputeBackend:
    """The backend hot-path dispatch points should consult *now*."""
    backend = _ACTIVE.get()
    if backend is not None:
        return backend
    return default_backend()


@contextmanager
def use_backend(
    backend: ComputeBackend | str | None,
) -> Iterator[ComputeBackend]:
    """Set the ambient backend for the enclosed block.

    ``None`` means "inherit": the block runs under whatever backend is
    already active, which lets engines accept an optional ``backend``
    knob and wrap their hot loop unconditionally.
    """
    if backend is None:
        yield active_backend()
        return
    resolved = resolve_backend(backend)
    token = _ACTIVE.set(resolved)
    try:
        yield resolved
    finally:
        _ACTIVE.reset(token)


def _clear_default_cache() -> None:
    """Drop cached detection results (test helper)."""
    _DEFAULT_CACHE.clear()


# -- runtime kernel degradation ---------------------------------------------
#
# A backend's self_check() certifies it at selection time, but a JIT
# kernel can still die at *run* time (resource exhaustion, a numba
# cache gone stale under it, an input shape its compilation never saw
# — or an injected ``backend.kernel`` fault).  The dispatch sites all
# keep the NumPy reference path as their fall-through, so the graceful
# response is: quarantine that one kernel, warn once, and let the
# reference path carry the run to completion.

_QUARANTINE_LOCK = threading.Lock()

# (backend name, kernel name) -> one-line reason.  Process-global
# rather than per-backend-instance so the record survives registry
# cache resets and is cheap to snapshot onto results.
_QUARANTINED: dict[tuple[str, str], str] = {}


def quarantine_kernel(
    backend: ComputeBackend | str, name: str, reason: BaseException | str
) -> None:
    """Disable one backend kernel for the rest of the process.

    Subsequent :func:`backend_kernel` lookups for it return ``None``
    (the reference path).  Warns once per (backend, kernel) pair —
    a degraded run must be visible, but not at one warning per batch.
    """
    backend_name = backend if isinstance(backend, str) else backend.name
    message = (
        f"{type(reason).__name__}: {reason}"
        if isinstance(reason, BaseException)
        else str(reason)
    )
    with _QUARANTINE_LOCK:
        if (backend_name, name) in _QUARANTINED:
            return
        _QUARANTINED[(backend_name, name)] = message
    warnings.warn(
        f"backend {backend_name!r} kernel {name!r} failed at runtime "
        f"({message}); falling back to the numpy reference "
        "implementation for the rest of this process",
        RuntimeWarning,
        stacklevel=3,
    )


def degraded_kernels() -> dict[str, str]:
    """Quarantined kernels as ``{"backend/kernel": reason}`` (snapshot)."""
    with _QUARANTINE_LOCK:
        return {
            f"{backend}/{kernel}": reason
            for (backend, kernel), reason in sorted(_QUARANTINED.items())
        }


def _clear_quarantine() -> None:
    """Forget quarantined kernels (test helper)."""
    with _QUARANTINE_LOCK:
        _QUARANTINED.clear()


def backend_kernel(name: str) -> Callable | None:
    """The active backend's accelerated kernel for ``name``, if usable.

    The hot-path dispatch API: consults :func:`active_backend`, skips
    kernels quarantined by an earlier runtime failure, and — only when
    a fault plan is armed — wraps the kernel so the ``backend.kernel``
    fault point fires per invocation.  Disarmed, the returned kernel
    is the backend's own callable, untouched.
    """
    backend = active_backend()
    kernel = backend.kernel(name)
    if kernel is None:
        return None
    if _QUARANTINED and (backend.name, name) in _QUARANTINED:
        return None
    if not faults_armed():
        return kernel

    def _faulted_kernel(*args, **kwargs):
        fault_point("backend.kernel", kernel=name, backend=backend.name)
        return kernel(*args, **kwargs)

    return _faulted_kernel
