"""JIT-compilable kernel sources for the ``numba`` backend.

This module intentionally does **not** import :mod:`numba`.  It exposes
:func:`build_kernels`, which takes the two decorators a JIT needs
(``njit`` and ``prange``) and returns the compiled kernel set.  The
``numba`` backend calls it with the real decorators; the test suite
calls it with identity decorators and ``range`` to exercise the exact
same loop bodies in pure Python against the NumPy reference — so the
kernel *logic* stays verified even in environments where numba is not
installed and the compiled path is skipped.

RNG design
----------
NumPy ``Generator`` objects cannot cross into nopython code, so kernels
that must draw inside the hot loop use a counter-style splitmix64 stream
seeded from the caller's ``Generator`` (one 63-bit draw per kernel
invocation).  Each row derives an independent stream from
``seed + row * GAMMA``, which makes ``prange`` over rows deterministic
for a given spec seed regardless of thread scheduling.  Bounded integer
draws use rejection below the largest multiple of the bound, so they
are *exactly* uniform — a label with zero population occupies a
zero-width step of the integer CDF and can never be drawn, matching the
NumPy paths' integer-exact sampling guarantee.

Consequences for determinism: given the same spec seed, the numba and
numpy backends consume different raw streams, so trajectories agree in
distribution (KS-equivalence, verified in ``tests/test_backends.py``),
not bitwise.  The two exceptions are ``sample_holders`` (the bounded
draws come from the caller's ``Generator`` exactly as in the reference,
so results are bitwise-identical) and ``batch_categorical`` (same
single uniform per replica as the reference).

Pure-Python callers note: NumPy emits ``RuntimeWarning`` on wrapping
``uint64`` scalar arithmetic; wrap calls in
``np.errstate(over="ignore")`` (the compiled path wraps natively and
never warns).
"""

from __future__ import annotations

import numpy as np

__all__ = ["KERNEL_NAMES", "build_kernels"]

#: The kernel names the numba backend advertises via ``accelerates``.
KERNEL_NAMES = frozenset(
    {
        "majority_winners",
        "hmajority_population_batch",
        "csr_sample_gather",
        "batch_categorical",
        "sample_holders",
    }
)

_U64_MAX = np.uint64(0xFFFFFFFFFFFFFFFF)
_SPLITMIX_GAMMA = np.uint64(0x9E3779B97F4A7C15)
_MIX_A = np.uint64(0xBF58476D1CE4E5B9)
_MIX_B = np.uint64(0x94D049BB133111EB)
#: Per-row stream separation constant (odd, full avalanche downstream).
_ROW_GAMMA = np.uint64(0xBF58476D1CE4E5B9)


def build_kernels(njit, prange):
    """Build the kernel set with the given JIT decorators.

    ``njit`` must be a decorator *factory* accepting keyword options
    (``njit(parallel=True)``, ``njit(inline="always")``) — numba's
    ``numba.njit`` qualifies, and so does an identity factory like
    ``lambda **kw: (lambda fn: fn)`` for pure-Python testing.
    ``prange`` is ``numba.prange`` or builtin ``range``.

    Returns a dict mapping the names in :data:`KERNEL_NAMES` (plus the
    private helpers, prefixed ``_``) to the decorated functions.
    """

    @njit(inline="always")
    def _splitmix(state):
        # splitmix64: one full-avalanche 64-bit output per call.
        state = state + _SPLITMIX_GAMMA
        z = state
        z = (z ^ (z >> np.uint64(30))) * _MIX_A
        z = (z ^ (z >> np.uint64(27))) * _MIX_B
        return state, z ^ (z >> np.uint64(31))

    @njit(inline="always")
    def _bounded(state, bound):
        # Exactly-uniform draw in [0, bound) via rejection below the
        # largest representable multiple of ``bound``.
        limit = (_U64_MAX // bound) * bound
        while True:
            state, z = _splitmix(state)
            if z < limit:
                return state, z % bound

    @njit(inline="always")
    def _row_state(seed, row):
        return seed + np.uint64(row) * _ROW_GAMMA

    @njit(inline="always")
    def _cdf_find(cdf, draw):
        # First index with cdf[idx] > draw  (== (cdf <= draw).sum()).
        lo = 0
        hi = cdf.shape[0]
        while lo < hi:
            mid = (lo + hi) // 2
            if cdf[mid] <= draw:
                lo = mid + 1
            else:
                hi = mid
        return lo

    @njit(parallel=True)
    def majority_winners_kernel(samples, u, out):
        # Per-row plurality with uniform tie-break among *positions*
        # (equivalent to uniform among tied labels: tied labels occupy
        # equal numbers of positions).  u holds one uniform per row,
        # drawn by the caller from its Generator.  Counts live in local
        # int64 scalars, so the int8-scratch overflow hazard of the
        # NumPy reference cannot arise here at any h.
        m, h = samples.shape
        for i in prange(m):
            best = 0
            ties = 0
            for a in range(h):
                sa = samples[i, a]
                c = 0
                for b in range(h):
                    if samples[i, b] == sa:
                        c += 1
                if c > best:
                    best = c
                    ties = 1
                elif c == best:
                    ties += 1
            pick = int(u[i] * ties)
            if pick >= ties:  # u == 1.0-ulp edge
                pick = ties - 1
            seen = 0
            for a in range(h):
                sa = samples[i, a]
                c = 0
                for b in range(h):
                    if samples[i, b] == sa:
                        c += 1
                if c == best:
                    if seen == pick:
                        out[i] = sa
                        break
                    seen += 1

    @njit(parallel=True)
    def hmajority_population_kernel(counts, h, seed, out):
        # Fused h-majority population round: for every replica row and
        # every one of its ``n`` vertices, draw h i.i.d. opinions by
        # integer inverse-CDF from the row's counts, tally them with
        # streaming per-sample counts (at most h distinct labels), and
        # bank the plurality winner (uniform tie-break) directly into
        # the output histogram.  No (rows, n*h) sample matrix, no
        # multinomial + permuted shuffle — the allocation-free
        # replacement for the O(n·h²) reference pass.
        rows, k = counts.shape
        for r in prange(rows):
            cdf = np.empty(k, np.int64)
            total = np.int64(0)
            for j in range(k):
                total += counts[r, j]
                cdf[j] = total
            if total <= 0:
                continue
            n_u = np.uint64(total)
            state = _row_state(seed, r)
            labels = np.empty(h, np.int64)
            occur = np.empty(h, np.int64)
            for _v in range(total):
                m = 0
                for _t in range(h):
                    state, draw = _bounded(state, n_u)
                    lab = _cdf_find(cdf, np.int64(draw))
                    found = False
                    for q in range(m):
                        if labels[q] == lab:
                            occur[q] += 1
                            found = True
                            break
                    if not found:
                        labels[m] = lab
                        occur[m] = 1
                        m += 1
                best = np.int64(0)
                ties = np.uint64(0)
                for q in range(m):
                    if occur[q] > best:
                        best = occur[q]
                        ties = np.uint64(1)
                    elif occur[q] == best:
                        ties += np.uint64(1)
                if ties == np.uint64(1):
                    for q in range(m):
                        if occur[q] == best:
                            out[r, labels[q]] += 1
                            break
                else:
                    state, pick = _bounded(state, ties)
                    seen = np.uint64(0)
                    for q in range(m):
                        if occur[q] == best:
                            if seen == pick:
                                out[r, labels[q]] += 1
                                break
                            seen += np.uint64(1)

    @njit(parallel=True)
    def csr_sample_gather_kernel(indptr, indices, opinions, seed, out):
        # Fused uniform-neighbour sample + opinion gather over a CSR
        # adjacency: writes opinions[r, random neighbour of v] straight
        # into out[j, r, v] without materialising the (s, rows, n)
        # index tensor the reference path builds.
        s = out.shape[0]
        rows = out.shape[1]
        n = out.shape[2]
        for r in prange(rows):
            state = _row_state(seed, r)
            for v in range(n):
                base = indptr[v]
                deg = indptr[v + 1] - base
                if deg <= 0:
                    for j in range(s):
                        out[j, r, v] = opinions[r, v]
                    continue
                deg_u = np.uint64(deg)
                for j in range(s):
                    state, off = _bounded(state, deg_u)
                    out[j, r, v] = opinions[r, indices[base + np.int64(off)]]

    @njit(parallel=True)
    def batch_categorical_kernel(p, u, out):
        # One categorical draw per row by inverse CDF, renormalising by
        # the row total exactly like the reference (same single uniform
        # per row, same first-index-with-cdf>threshold rule).
        rows, k = p.shape
        for r in prange(rows):
            total = 0.0
            for j in range(k):
                total += p[r, j]
            threshold = u[r] * total
            acc = 0.0
            choice = k - 1
            for j in range(k):
                acc += p[r, j]
                if acc > threshold:
                    choice = j
                    break
            out[r] = choice

    @njit(parallel=True)
    def sample_holders_kernel(counts, draws, out):
        # Integer-exact inverse CDF over per-row counts.  ``draws``
        # comes from the caller's Generator with per-row bounds, so the
        # result is bitwise-identical to the NumPy reference.
        rows, k = counts.shape
        s = draws.shape[1]
        for r in prange(rows):
            cdf = np.empty(k, np.int64)
            total = np.int64(0)
            for j in range(k):
                total += counts[r, j]
                cdf[j] = total
            for i in range(s):
                out[r, i] = _cdf_find(cdf, draws[r, i])

    return {
        "_splitmix": _splitmix,
        "_bounded": _bounded,
        "_row_state": _row_state,
        "_cdf_find": _cdf_find,
        "majority_winners": majority_winners_kernel,
        "hmajority_population_batch": hmajority_population_kernel,
        "csr_sample_gather": csr_sample_gather_kernel,
        "batch_categorical": batch_categorical_kernel,
        "sample_holders": sample_holders_kernel,
    }
