"""Pluggable compute backends for the hot-path kernels.

The batch engines vectorised everything, but two measured hot loops are
memory- or Python-bound in ways NumPy cannot fix: h-majority's
O(n·h²) shared-sample counting pass and the agent-batch CSR
sample+gather.  This package routes those loops (plus the async tick
samplers) through named, swappable kernels:

>>> from repro.backends import available_backends, use_backend
>>> available_backends()
['numba', 'numpy']
>>> with use_backend("numpy"):
...     pass  # everything under here uses the reference paths

Selection surface, in increasing precedence:

1. auto-detection (fail-closed: a backend must import, probe available
   *and* pass its self-check to win; otherwise ``numpy``);
2. the ``REPRO_BACKEND`` environment variable;
3. ``SimulationSpec(backend=...)`` / ``Simulation.backend(...)`` /
   CLI ``--backend`` / the sweep ``backend`` axis;
4. an explicit ``with use_backend(...)`` block.

The ``numpy`` backend is the always-available reference (it accelerates
nothing — dispatch falls through to the inline vectorised code).  The
``numba`` backend is opt-in and lazily imported; requesting it without
numba installed raises
:class:`~repro.errors.BackendUnavailableError`.
"""

from __future__ import annotations

from repro.backends.numba_backend import NumbaBackend
from repro.backends.numpy_backend import NumpyBackend
from repro.backends.registry import (
    AUTO_BACKEND,
    BACKEND_ENV_VAR,
    ComputeBackend,
    active_backend,
    available_backends,
    backend_available,
    backend_kernel,
    default_backend,
    degraded_kernels,
    detect_backend,
    get_backend,
    quarantine_kernel,
    register_backend,
    resolve_backend,
    unregister_backend,
    use_backend,
)

__all__ = [
    "AUTO_BACKEND",
    "BACKEND_ENV_VAR",
    "ComputeBackend",
    "NumbaBackend",
    "NumpyBackend",
    "active_backend",
    "available_backends",
    "backend_available",
    "backend_kernel",
    "default_backend",
    "degraded_kernels",
    "detect_backend",
    "get_backend",
    "quarantine_kernel",
    "register_backend",
    "resolve_backend",
    "unregister_backend",
    "use_backend",
]

# Built-in backends.  numpy registers at priority 0 (the reference /
# fallback tier); numba above it so a *verified* install wins
# auto-detection.  ``replace=True`` keeps module re-imports idempotent.
register_backend("numpy", NumpyBackend, priority=0, replace=True)
register_backend("numba", NumbaBackend, priority=10, replace=True)
