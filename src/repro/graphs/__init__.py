"""Graph substrates for consensus dynamics.

The paper's canonical substrate is :class:`CompleteGraph` with self-loops;
the remaining families support the open-question experiments of Section
2.5 (expanders, stochastic block models, core-periphery graphs).
"""

from repro.graphs.base import AdjacencyGraph, Graph
from repro.graphs.complete import CompleteGraph
from repro.graphs.generators import (
    core_periphery,
    cycle_graph,
    erdos_renyi,
    from_networkx,
    random_regular,
    stochastic_block_model,
    torus_grid,
)

__all__ = [
    "AdjacencyGraph",
    "CompleteGraph",
    "Graph",
    "core_periphery",
    "cycle_graph",
    "erdos_renyi",
    "from_networkx",
    "random_regular",
    "stochastic_block_model",
    "torus_grid",
]
