"""Graph substrates for consensus dynamics.

The paper's canonical substrate is :class:`CompleteGraph` with self-loops;
the remaining families support the open-question experiments of Section
2.5 (expanders, stochastic block models, core-periphery graphs).
"""

from repro.graphs.base import AdjacencyGraph, Graph
from repro.graphs.complete import CompleteGraph
from repro.graphs.generators import (
    GRAPH_FAMILIES,
    core_periphery,
    cycle_graph,
    erdos_renyi,
    from_networkx,
    make_graph,
    random_regular,
    stochastic_block_model,
    torus_grid,
)

__all__ = [
    "AdjacencyGraph",
    "CompleteGraph",
    "GRAPH_FAMILIES",
    "Graph",
    "core_periphery",
    "cycle_graph",
    "erdos_renyi",
    "from_networkx",
    "make_graph",
    "random_regular",
    "stochastic_block_model",
    "torus_grid",
]
