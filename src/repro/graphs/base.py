"""Graph substrate interface.

The dynamics studied in the paper only ever interact with the underlying
graph through one primitive: *every vertex simultaneously samples one or
more uniformly-random neighbours (with replacement)*.  The
:class:`Graph` interface therefore exposes exactly that primitive, which
lets the complete graph (the paper's setting) special-case to a trivially
vectorised implementation while arbitrary graphs go through a CSR
adjacency structure.

Self-loops matter: on the paper's "complete graph with self-loops",
choosing a random neighbour means choosing a uniformly random vertex
*including yourself*.  Graph constructors take an explicit ``self_loops``
flag so that both conventions are available.
"""

from __future__ import annotations

import abc

import numpy as np

from repro.errors import GraphError

__all__ = ["Graph", "AdjacencyGraph"]


class Graph(abc.ABC):
    """A vertex set plus the neighbour-sampling primitive.

    Subclasses must set :attr:`num_vertices` and implement
    :meth:`sample_neighbors`.
    """

    num_vertices: int

    @abc.abstractmethod
    def sample_neighbors(
        self, rng: np.random.Generator, samples_per_vertex: int
    ) -> np.ndarray:
        """Sample neighbours for every vertex simultaneously.

        Returns an ``(num_vertices, samples_per_vertex)`` integer array
        whose row ``v`` holds i.i.d. uniform samples from the neighbourhood
        of ``v`` (with replacement).
        """

    def sample_neighbors_of(
        self,
        vertices: np.ndarray,
        rng: np.random.Generator,
        samples_per_vertex: int,
    ) -> np.ndarray:
        """Sample neighbours for a subset of vertices.

        Used by asynchronous schedules where only one (or a few) vertices
        update per tick.  The default implementation materialises degrees
        lazily via :meth:`sample_neighbors`; subclasses override it with a
        direct computation.
        """
        full = self.sample_neighbors(rng, samples_per_vertex)
        return full[np.asarray(vertices)]

    @property
    def is_complete_with_self_loops(self) -> bool:
        """True only for the paper's canonical substrate.

        The population (count-vector) engine is exact precisely on this
        substrate; engines consult this flag to decide whether the count
        representation is sufficient.
        """
        return False

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(n={self.num_vertices})"


class AdjacencyGraph(Graph):
    """A general (di)graph stored in CSR form with O(1) neighbour sampling.

    Parameters
    ----------
    indptr, indices:
        Standard CSR row-pointer and column-index arrays.  Row ``v`` of the
        adjacency list is ``indices[indptr[v]:indptr[v+1]]``.  Multi-edges
        are allowed and weight the sampling accordingly.
    name:
        Optional label used in reprs and experiment tables.
    """

    def __init__(
        self,
        indptr: np.ndarray,
        indices: np.ndarray,
        name: str | None = None,
    ) -> None:
        self.indptr = np.asarray(indptr, dtype=np.int64)
        self.indices = np.asarray(indices, dtype=np.int64)
        if self.indptr.ndim != 1 or self.indptr.size < 2:
            raise GraphError("indptr must be 1-D with at least two entries")
        if self.indptr[0] != 0 or self.indptr[-1] != self.indices.size:
            raise GraphError("indptr is inconsistent with indices")
        if np.any(np.diff(self.indptr) < 0):
            raise GraphError("indptr must be non-decreasing")
        self.num_vertices = self.indptr.size - 1
        self.degrees = np.diff(self.indptr)
        if (self.degrees == 0).any():
            isolated = int(np.flatnonzero(self.degrees == 0)[0])
            raise GraphError(
                f"vertex {isolated} has no neighbours; consensus dynamics "
                "require every vertex to be able to sample a neighbour "
                "(add self-loops or remove isolated vertices)"
            )
        if self.indices.size and (
            self.indices.min() < 0 or self.indices.max() >= self.num_vertices
        ):
            raise GraphError("indices reference vertices outside the graph")
        self.name = name or "adjacency"

    @classmethod
    def from_edges(
        cls,
        num_vertices: int,
        edges: np.ndarray,
        directed: bool = False,
        self_loops: bool = False,
        name: str | None = None,
    ) -> "AdjacencyGraph":
        """Build from an ``(m, 2)`` edge array.

        Undirected edges are symmetrised.  ``self_loops=True`` appends one
        self-loop per vertex (the paper's convention).
        """
        edges = np.asarray(edges, dtype=np.int64).reshape(-1, 2)
        src, dst = edges[:, 0], edges[:, 1]
        if not directed:
            src, dst = (
                np.concatenate([src, dst]),
                np.concatenate([dst, src]),
            )
        if self_loops:
            loops = np.arange(num_vertices, dtype=np.int64)
            src = np.concatenate([src, loops])
            dst = np.concatenate([dst, loops])
        order = np.argsort(src, kind="stable")
        src, dst = src[order], dst[order]
        indptr = np.zeros(num_vertices + 1, dtype=np.int64)
        np.add.at(indptr, src + 1, 1)
        np.cumsum(indptr, out=indptr)
        return cls(indptr, dst, name=name)

    def sample_neighbors(
        self, rng: np.random.Generator, samples_per_vertex: int
    ) -> np.ndarray:
        offsets = rng.integers(
            0,
            self.degrees[:, None],
            size=(self.num_vertices, samples_per_vertex),
        )
        return self.indices[self.indptr[:-1, None] + offsets]

    def sample_neighbors_of(
        self,
        vertices: np.ndarray,
        rng: np.random.Generator,
        samples_per_vertex: int,
    ) -> np.ndarray:
        vertices = np.asarray(vertices, dtype=np.int64)
        offsets = rng.integers(
            0,
            self.degrees[vertices, None],
            size=(vertices.size, samples_per_vertex),
        )
        return self.indices[self.indptr[vertices, None] + offsets]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"AdjacencyGraph(name={self.name!r}, n={self.num_vertices}, "
            f"edges={self.indices.size})"
        )
