"""Graph substrate interface.

The dynamics studied in the paper only ever interact with the underlying
graph through one primitive: *every vertex simultaneously samples one or
more uniformly-random neighbours (with replacement)*.  The
:class:`Graph` interface therefore exposes exactly that primitive, which
lets the complete graph (the paper's setting) special-case to a trivially
vectorised implementation while arbitrary graphs go through a CSR
adjacency structure.

Two batched views of the same primitive exist: :meth:`Graph.
sample_neighbors` draws one round of samples for a single replica, and
:meth:`Graph.sample_neighbors_batch` draws one round for R independent
replicas sharing the substrate — the sampling backbone of the
``agent-batch`` engine.  The batched form is sample-major,
``(samples_per_vertex, R, n)``, so each sample plane is one contiguous
matrix (the layout the vectorised ``agent_step_batch`` combiners consume
without strided access).

Self-loops matter: on the paper's "complete graph with self-loops",
choosing a random neighbour means choosing a uniformly random vertex
*including yourself*.  Graph constructors take an explicit ``self_loops``
flag so that both conventions are available.
"""

from __future__ import annotations

import abc

import numpy as np

from repro.errors import GraphError

__all__ = ["Graph", "AdjacencyGraph", "vertex_id_dtype"]


def vertex_id_dtype(num_vertices: int) -> np.dtype:
    """Narrowest practical dtype for vertex ids of an ``n``-vertex graph.

    Used by the batched samplers to keep neighbour-id tensors (the
    bandwidth hot spot of the ``agent-batch`` pipeline) as small as the
    vertex count allows; index arithmetic upcasts transparently.  An
    8-bit tier is deliberately absent — numpy's 8-bit bounded draws
    measure no faster than 16-bit ones, and graphs that small are not
    worth a branch.
    """
    if num_vertices <= 1 << 16:
        return np.dtype(np.uint16)
    if num_vertices <= 1 << 31:
        return np.dtype(np.int32)
    return np.dtype(np.int64)


class Graph(abc.ABC):
    """A vertex set plus the neighbour-sampling primitive.

    Subclasses must set :attr:`num_vertices` and implement
    :meth:`sample_neighbors`.
    """

    num_vertices: int

    @abc.abstractmethod
    def sample_neighbors(
        self, rng: np.random.Generator, samples_per_vertex: int
    ) -> np.ndarray:
        """Sample neighbours for every vertex simultaneously.

        Returns an ``(num_vertices, samples_per_vertex)`` integer array
        whose row ``v`` holds i.i.d. uniform samples from the neighbourhood
        of ``v`` (with replacement).
        """

    def sample_neighbors_of(
        self,
        vertices: np.ndarray,
        rng: np.random.Generator,
        samples_per_vertex: int,
    ) -> np.ndarray:
        """Sample neighbours for a subset of vertices.

        Used by asynchronous schedules where only one (or a few) vertices
        update per tick.  The default implementation materialises degrees
        lazily via :meth:`sample_neighbors`; subclasses override it with a
        direct computation.
        """
        full = self.sample_neighbors(rng, samples_per_vertex)
        return full[np.asarray(vertices)]

    def sample_neighbors_batch(
        self,
        rng: np.random.Generator,
        samples_per_vertex: int,
        num_replicas: int,
    ) -> np.ndarray:
        """Sample neighbours for every vertex of R independent replicas.

        Returns a ``(samples_per_vertex, num_replicas, num_vertices)``
        integer array: entry ``[j, r, v]`` is the ``j``-th i.i.d. uniform
        neighbour sample of vertex ``v`` in replica ``r``.  All entries
        are independent — replicas share the substrate, never the
        randomness.  The sample-major layout keeps each sample plane
        contiguous for the vectorised ``agent_step_batch`` combiners.

        The returned dtype is any integer type holding a vertex id
        (subclasses narrow it for cache friendliness); downstream index
        arithmetic upcasts as needed.  This base implementation loops
        :meth:`sample_neighbors` over replicas (correct for any graph, no
        speedup); :class:`AdjacencyGraph` and
        :class:`~repro.graphs.complete.CompleteGraph` override it with
        single-pass vectorised samplers.
        """
        stacked = np.stack(
            [
                self.sample_neighbors(rng, samples_per_vertex)
                for _ in range(num_replicas)
            ]
        )
        # (R, n, s) -> contiguous (s, R, n).
        return np.ascontiguousarray(stacked.transpose(2, 0, 1))

    def csr_arrays(self) -> tuple[np.ndarray, np.ndarray]:
        """CSR adjacency export: ``(indptr, indices)``.

        Row ``v`` of the adjacency list is
        ``indices[indptr[v]:indptr[v+1]]``.  :class:`AdjacencyGraph`
        returns its own arrays (no copy); the complete graph materialises
        the dense structure (O(n^2) memory — intended for tests and
        small-n interop, not for large complete substrates).  Graphs
        without an adjacency representation raise
        :class:`~repro.errors.GraphError`.
        """
        raise GraphError(
            f"{type(self).__name__} does not expose a CSR adjacency "
            "structure"
        )

    @property
    def is_complete_with_self_loops(self) -> bool:
        """True only for the paper's canonical substrate.

        The population (count-vector) engine is exact precisely on this
        substrate; engines consult this flag to decide whether the count
        representation is sufficient.
        """
        return False

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(n={self.num_vertices})"


class AdjacencyGraph(Graph):
    """A general (di)graph stored in CSR form with O(1) neighbour sampling.

    Parameters
    ----------
    indptr, indices:
        Standard CSR row-pointer and column-index arrays.  Row ``v`` of the
        adjacency list is ``indices[indptr[v]:indptr[v+1]]``.  Multi-edges
        are allowed and weight the sampling accordingly.
    name:
        Optional label used in reprs and experiment tables.
    """

    def __init__(
        self,
        indptr: np.ndarray,
        indices: np.ndarray,
        name: str | None = None,
    ) -> None:
        self.indptr = np.asarray(indptr, dtype=np.int64)
        self.indices = np.asarray(indices, dtype=np.int64)
        if self.indptr.ndim != 1 or self.indptr.size < 2:
            raise GraphError("indptr must be 1-D with at least two entries")
        if self.indptr[0] != 0 or self.indptr[-1] != self.indices.size:
            raise GraphError("indptr is inconsistent with indices")
        if np.any(np.diff(self.indptr) < 0):
            raise GraphError("indptr must be non-decreasing")
        self.num_vertices = self.indptr.size - 1
        self.degrees = np.diff(self.indptr)
        if (self.degrees == 0).any():
            isolated = int(np.flatnonzero(self.degrees == 0)[0])
            raise GraphError(
                f"vertex {isolated} has no neighbours; consensus dynamics "
                "require every vertex to be able to sample a neighbour "
                "(add self-loops or remove isolated vertices)"
            )
        if self.indices.size and (
            self.indices.min() < 0 or self.indices.max() >= self.num_vertices
        ):
            raise GraphError("indices reference vertices outside the graph")
        self.name = name or "adjacency"
        # Lazy caches for the batched sampler: a narrow-dtype copy of the
        # adjacency list (halves/quarters gather bandwidth) and the
        # constant degree when the graph is regular (enables the
        # scalar-bound offset draw, ~5x cheaper per sample than numpy's
        # per-vertex-bound path).  Built on first batch call; irregular
        # graphs never pay for the copy (their sampler cannot use it).
        self._batch_indices: np.ndarray | None = None
        self._constant_degree: int | None = None
        self._degree_scanned = False

    @classmethod
    def from_edges(
        cls,
        num_vertices: int,
        edges: np.ndarray,
        directed: bool = False,
        self_loops: bool = False,
        name: str | None = None,
    ) -> "AdjacencyGraph":
        """Build from an ``(m, 2)`` edge array.

        Undirected edges are symmetrised.  ``self_loops=True`` appends one
        self-loop per vertex (the paper's convention).
        """
        edges = np.asarray(edges, dtype=np.int64).reshape(-1, 2)
        src, dst = edges[:, 0], edges[:, 1]
        if not directed:
            src, dst = (
                np.concatenate([src, dst]),
                np.concatenate([dst, src]),
            )
        if self_loops:
            loops = np.arange(num_vertices, dtype=np.int64)
            src = np.concatenate([src, loops])
            dst = np.concatenate([dst, loops])
        order = np.argsort(src, kind="stable")
        src, dst = src[order], dst[order]
        indptr = np.zeros(num_vertices + 1, dtype=np.int64)
        np.add.at(indptr, src + 1, 1)
        np.cumsum(indptr, out=indptr)
        return cls(indptr, dst, name=name)

    def sample_neighbors(
        self, rng: np.random.Generator, samples_per_vertex: int
    ) -> np.ndarray:
        offsets = rng.integers(
            0,
            self.degrees[:, None],
            size=(self.num_vertices, samples_per_vertex),
        )
        return self.indices[self.indptr[:-1, None] + offsets]

    def sample_neighbors_of(
        self,
        vertices: np.ndarray,
        rng: np.random.Generator,
        samples_per_vertex: int,
    ) -> np.ndarray:
        vertices = np.asarray(vertices, dtype=np.int64)
        offsets = rng.integers(
            0,
            self.degrees[vertices, None],
            size=(vertices.size, samples_per_vertex),
        )
        return self.indices[self.indptr[vertices, None] + offsets]

    def csr_arrays(self) -> tuple[np.ndarray, np.ndarray]:
        """The graph's own ``(indptr, indices)`` arrays (no copy)."""
        return self.indptr, self.indices

    def csr_kernel_tables(self) -> tuple[np.ndarray, np.ndarray]:
        """``(indptr, indices)`` in the layout compiled kernels expect.

        The capability hook behind
        :func:`repro.core.base.sample_and_gather_neighbor_opinions_batch`:
        a graph that exposes this method opts its adjacency into the
        fused backend ``csr_sample_gather`` kernel.  Both arrays are
        C-contiguous int64 (``__init__`` coerces them), so every graph
        shares one compiled kernel signature.  Graphs whose sampling is
        closed-form rather than table-driven (the complete graph)
        simply do not define it and keep their NumPy fast path.
        """
        return self.indptr, self.indices

    def _batch_sampling_tables(
        self,
    ) -> tuple[np.ndarray | None, int | None]:
        """(Once) scan for a constant degree; build the narrow copy.

        Returns ``(indices, degree)`` — both ``None``-free only for
        regular graphs; irregular graphs get ``(None, None)`` and skip
        the narrow adjacency copy entirely, since their sampler indexes
        the original arrays.
        """
        if not self._degree_scanned:
            low, high = int(self.degrees.min()), int(self.degrees.max())
            self._constant_degree = high if low == high else None
            self._degree_scanned = True
        if self._constant_degree is None:
            return None, None
        if self._batch_indices is None:
            self._batch_indices = self.indices.astype(
                vertex_id_dtype(self.num_vertices)
            )
        return self._batch_indices, self._constant_degree

    def _uniform_offsets_batch(
        self, rng: np.random.Generator, degree: int, shape: tuple[int, ...]
    ) -> np.ndarray:
        """Exact uniform draws from ``[0, degree)`` for a regular graph.

        A power-of-two degree is served from the raw bit stream: one
        ``uint64`` draw yields eight (``degree <= 256``) or four masked
        offsets, which is several times cheaper per sample than numpy's
        bounded-integer path and still exactly uniform (masking uniform
        bits is bias-free only because the bound divides the bit-range —
        hence the power-of-two gate).  Other degrees use the scalar-bound
        Lemire path, still well ahead of the per-vertex-bound draw the
        sequential sampler needs.
        """
        total = int(np.prod(shape))
        if degree & (degree - 1) == 0 and degree <= 1 << 16:
            view_dtype = np.uint8 if degree <= 1 << 8 else np.uint16
            per_word = 8 if view_dtype is np.uint8 else 4
            words = (total + per_word - 1) // per_word
            raw = rng.integers(
                0, 1 << 64, size=words, dtype=np.uint64
            ).view(view_dtype)[:total]
            np.bitwise_and(raw, degree - 1, out=raw)
            return raw.reshape(shape)
        dtype = np.uint16 if degree <= 1 << 16 else np.int64
        return rng.integers(0, degree, size=shape, dtype=dtype)

    def sample_neighbors_batch(
        self,
        rng: np.random.Generator,
        samples_per_vertex: int,
        num_replicas: int,
    ) -> np.ndarray:
        """One vectorised pass for all R replicas (see :class:`Graph`).

        Regular graphs draw every offset with one scalar-bound (or, for
        power-of-two degrees, raw-bit-masked) call and resolve them
        through the CSR arrays with bounds-check-free ``np.take`` — the
        positions are in range by construction (``offset < degree`` and
        ``indptr[v] + degree <= indptr[v + 1]``).  Irregular graphs fall
        back to numpy's per-vertex-bound draw, which is exactly the
        sequential sampler broadcast over replicas.
        """
        shape = (samples_per_vertex, num_replicas, self.num_vertices)
        indices, degree = self._batch_sampling_tables()
        if degree is not None:
            offsets = self._uniform_offsets_batch(rng, degree, shape)
            positions = np.add(
                self.indptr[:-1], offsets, casting="unsafe"
            )
            return np.take(indices, positions, mode="clip")
        offsets = rng.integers(0, self.degrees, size=shape)
        return self.indices[self.indptr[:-1] + offsets]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"AdjacencyGraph(name={self.name!r}, n={self.num_vertices}, "
            f"edges={self.indices.size})"
        )
