"""Graph family generators.

The paper's open questions (Section 2.5) ask about 3-Majority/2-Choices
with many opinions on graphs beyond the complete graph — expanders,
stochastic block models and core-periphery graphs are the families studied
in the k = 2 literature the paper cites ([CER14; CERRS15; CNS19; CNNS18]).
These generators build those families as :class:`~repro.graphs.base.
AdjacencyGraph` instances so the agent-level engine can run any dynamics
on them.

All generators take a ``seed`` (anything accepted by
:func:`repro.seeding.as_generator`) and a ``self_loops`` flag whose
default matches the paper's convention (loops on).
"""

from __future__ import annotations

import numpy as np

from repro.seeding import RandomState, as_generator
from repro.errors import GraphError
from repro.graphs.base import AdjacencyGraph, Graph
from repro.graphs.complete import CompleteGraph

__all__ = [
    "GRAPH_FAMILIES",
    "core_periphery",
    "cycle_graph",
    "erdos_renyi",
    "from_networkx",
    "make_graph",
    "random_regular",
    "stochastic_block_model",
    "torus_grid",
]


def _edges_to_graph(
    num_vertices: int,
    edges: np.ndarray,
    self_loops: bool,
    name: str,
) -> AdjacencyGraph:
    return AdjacencyGraph.from_edges(
        num_vertices, edges, directed=False, self_loops=self_loops, name=name
    )


def cycle_graph(
    num_vertices: int, self_loops: bool = True
) -> AdjacencyGraph:
    """The n-cycle — the slowest-mixing connected benchmark substrate."""
    if num_vertices < 3:
        raise GraphError("a cycle needs at least 3 vertices")
    v = np.arange(num_vertices, dtype=np.int64)
    edges = np.column_stack([v, (v + 1) % num_vertices])
    return _edges_to_graph(num_vertices, edges, self_loops, "cycle")


def torus_grid(
    side: int, self_loops: bool = True
) -> AdjacencyGraph:
    """The ``side x side`` two-dimensional torus (4-regular)."""
    if side < 2:
        raise GraphError("torus side must be at least 2")
    n = side * side
    v = np.arange(n, dtype=np.int64)
    row, col = divmod(v, side)
    right = row * side + (col + 1) % side
    down = ((row + 1) % side) * side + col
    edges = np.concatenate(
        [np.column_stack([v, right]), np.column_stack([v, down])]
    )
    return _edges_to_graph(n, edges, self_loops, f"torus{side}x{side}")


def erdos_renyi(
    num_vertices: int,
    edge_probability: float,
    seed: RandomState = None,
    self_loops: bool = True,
) -> AdjacencyGraph:
    """G(n, p) random graph.

    Sparse sampling via a binomial edge count plus rejection of duplicate
    pairs, so dense and sparse regimes both work.  Raises
    :class:`~repro.errors.GraphError` if any vertex ends up with no
    neighbours (only possible when ``self_loops=False``).
    """
    if not 0.0 < edge_probability <= 1.0:
        raise GraphError(
            f"edge probability must be in (0, 1], got {edge_probability}"
        )
    rng = as_generator(seed)
    n = num_vertices
    num_pairs = n * (n - 1) // 2
    count = rng.binomial(num_pairs, edge_probability)
    chosen = rng.choice(num_pairs, size=count, replace=False)
    # Invert the row-major upper-triangular pair index (i < j).
    i = (
        n
        - 2
        - np.floor(
            np.sqrt(-8.0 * chosen + 4.0 * n * (n - 1) - 7.0) / 2.0 - 0.5
        )
    ).astype(np.int64)
    j = (
        chosen + i + 1 - (n * (n - 1) - (n - i) * (n - i - 1)) // 2
    ).astype(np.int64)
    edges = np.column_stack([i, j])
    return _edges_to_graph(
        n, edges, self_loops, f"gnp(p={edge_probability:g})"
    )


def random_regular(
    num_vertices: int,
    degree: int,
    seed: RandomState = None,
    self_loops: bool = True,
) -> AdjacencyGraph:
    """Random d-regular graph (an expander with high probability).

    Delegates to networkx's pairing-with-repair sampler (the naive
    configuration model rejects simple pairings with probability
    ``~exp(d^2/4)``, hopeless already at d ~ 6).  The networkx sampler is
    seeded from our generator, so the usual reproducibility guarantees
    hold.
    """
    if degree < 1 or degree >= num_vertices:
        raise GraphError(
            f"degree must be in [1, n), got {degree} for n={num_vertices}"
        )
    if (num_vertices * degree) % 2 != 0:
        raise GraphError("n * degree must be even for a regular graph")
    import networkx as nx

    rng = as_generator(seed)
    nx_seed = int(rng.integers(0, 2**31 - 1))
    graph = nx.random_regular_graph(degree, num_vertices, seed=nx_seed)
    edges = np.asarray(list(graph.edges()), dtype=np.int64).reshape(-1, 2)
    return _edges_to_graph(
        num_vertices, edges, self_loops, f"random-regular(d={degree})"
    )


def stochastic_block_model(
    block_sizes: list[int],
    p_in: float,
    p_out: float,
    seed: RandomState = None,
    self_loops: bool = True,
) -> AdjacencyGraph:
    """Stochastic block model with homogeneous within/between densities.

    The k = 2 literature ([SS19], cited by the paper) studies phase
    transitions of Best-of-Two/Best-of-Three on this family; we expose it
    so the extension experiments can probe the many-opinion behaviour.
    """
    if not 0.0 <= p_out <= 1.0 or not 0.0 < p_in <= 1.0:
        raise GraphError("block densities must lie in [0, 1] (p_in > 0)")
    rng = as_generator(seed)
    sizes = np.asarray(block_sizes, dtype=np.int64)
    if sizes.ndim != 1 or sizes.size == 0 or (sizes <= 0).any():
        raise GraphError("block sizes must be positive integers")
    offsets = np.concatenate([[0], np.cumsum(sizes)])
    n = int(offsets[-1])
    chunks: list[np.ndarray] = []
    num_blocks = sizes.size
    for a in range(num_blocks):
        for b in range(a, num_blocks):
            p = p_in if a == b else p_out
            if p == 0.0:
                continue
            if a == b:
                size = sizes[a]
                mask = rng.random((size, size)) < p
                iu = np.triu(mask, k=1)
                src, dst = np.nonzero(iu)
                src = src + offsets[a]
                dst = dst + offsets[a]
            else:
                mask = rng.random((sizes[a], sizes[b])) < p
                src, dst = np.nonzero(mask)
                src = src + offsets[a]
                dst = dst + offsets[b]
            if src.size:
                chunks.append(np.column_stack([src, dst]))
    edges = (
        np.concatenate(chunks)
        if chunks
        else np.empty((0, 2), dtype=np.int64)
    )
    return _edges_to_graph(
        n, edges, self_loops, f"sbm(blocks={num_blocks})"
    )


def core_periphery(
    core_size: int,
    periphery_size: int,
    attachment: int = 1,
    seed: RandomState = None,
    self_loops: bool = True,
) -> AdjacencyGraph:
    """Dense core (clique) with sparsely attached periphery vertices.

    Mirrors the core-periphery family from [CNNS18] (cited in Section
    1.1): vertices ``0..core_size-1`` form a clique; each periphery vertex
    attaches to ``attachment`` uniformly random core vertices.
    """
    if core_size < 2:
        raise GraphError("core must have at least 2 vertices")
    if attachment < 1 or attachment > core_size:
        raise GraphError("attachment must be in [1, core_size]")
    rng = as_generator(seed)
    n = core_size + periphery_size
    ci, cj = np.triu_indices(core_size, k=1)
    chunks = [np.column_stack([ci, cj]).astype(np.int64)]
    if periphery_size > 0:
        periph = np.repeat(
            np.arange(core_size, n, dtype=np.int64), attachment
        )
        anchors = np.concatenate(
            [
                rng.choice(core_size, size=attachment, replace=False)
                for _ in range(periphery_size)
            ]
        ).astype(np.int64)
        chunks.append(np.column_stack([periph, anchors]))
    edges = np.concatenate(chunks)
    return _edges_to_graph(
        n, edges, self_loops, f"core-periphery({core_size}+{periphery_size})"
    )


#: Graph families addressable by name from flat, JSON-serialisable
#: parameters — the vocabulary shared by sweep grids and the CLI.
GRAPH_FAMILIES = ("complete", "random-regular", "erdos-renyi", "cycle")


def make_graph(
    name: str,
    num_vertices: int,
    degree: int | None = None,
    edge_probability: float | None = None,
    seed: RandomState = None,
    self_loops: bool = True,
) -> Graph:
    """Build a substrate from a family name plus flat parameters.

    The declarative counterpart of calling a generator directly, keyed so
    a graph sweep point (``graph``, ``degree``/``edge_probability``,
    ``graph_seed``) or a CLI invocation maps onto one call.  Families:
    ``complete`` (no extra parameters), ``random-regular`` (``degree``),
    ``erdos-renyi`` (``edge_probability``) and ``cycle``.  Parameters a
    family does not take are rejected rather than ignored — a sweep axis
    over an inapplicable parameter would otherwise fabricate identical
    substrates presented as different points.  Random families are
    deterministic given ``seed`` — the same seed yields the same edge
    set in any process (tested), so sweep cache entries stay
    reproducible.
    """

    def reject_extraneous(*labelled) -> None:
        extraneous = [
            label for label, value in labelled if value is not None
        ]
        if extraneous:
            raise GraphError(
                f"graph family {name!r} does not take "
                f"{', '.join(extraneous)}"
            )

    if name == "complete":
        reject_extraneous(
            ("degree", degree), ("edge_probability", edge_probability)
        )
        return CompleteGraph(num_vertices, self_loops=self_loops)
    if name == "random-regular":
        reject_extraneous(("edge_probability", edge_probability))
        if degree is None:
            raise GraphError("random-regular requires a degree")
        return random_regular(
            num_vertices, int(degree), seed=seed, self_loops=self_loops
        )
    if name == "erdos-renyi":
        reject_extraneous(("degree", degree))
        if edge_probability is None:
            raise GraphError("erdos-renyi requires an edge_probability")
        return erdos_renyi(
            num_vertices,
            float(edge_probability),
            seed=seed,
            self_loops=self_loops,
        )
    if name == "cycle":
        reject_extraneous(
            ("degree", degree), ("edge_probability", edge_probability)
        )
        return cycle_graph(num_vertices, self_loops=self_loops)
    raise GraphError(
        f"unknown graph family {name!r}; known: {sorted(GRAPH_FAMILIES)}"
    )


def from_networkx(graph, self_loops: bool = True) -> AdjacencyGraph:
    """Adapt a ``networkx`` graph into an :class:`AdjacencyGraph`.

    Node labels are compacted to ``0..n-1`` in sorted order.  Existing
    self-loops in the input are kept; ``self_loops=True`` additionally
    guarantees one loop per vertex (without duplicating existing ones).
    """
    nodes = sorted(graph.nodes())
    index = {node: pos for pos, node in enumerate(nodes)}
    n = len(nodes)
    if n == 0:
        raise GraphError("networkx graph has no nodes")
    raw = np.asarray(
        [[index[u], index[v]] for u, v in graph.edges()], dtype=np.int64
    ).reshape(-1, 2)
    loop_mask = raw[:, 0] == raw[:, 1] if raw.size else np.zeros(0, bool)
    has_loop = np.zeros(n, dtype=bool)
    has_loop[raw[loop_mask, 0]] = True
    plain = raw[~loop_mask]
    # Symmetrise plain edges and append exactly one loop per looped vertex.
    loop_vertices = (
        np.arange(n, dtype=np.int64)
        if self_loops
        else np.flatnonzero(has_loop).astype(np.int64)
    )
    src = np.concatenate([plain[:, 0], plain[:, 1], loop_vertices])
    dst = np.concatenate([plain[:, 1], plain[:, 0], loop_vertices])
    order = np.argsort(src, kind="stable")
    src, dst = src[order], dst[order]
    indptr = np.zeros(n + 1, dtype=np.int64)
    np.add.at(indptr, src + 1, 1)
    np.cumsum(indptr, out=indptr)
    return AdjacencyGraph(indptr, dst, name="networkx")
