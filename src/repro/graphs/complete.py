"""The complete graph, with and without self-loops.

The paper's canonical substrate is the complete graph *with* self-loops:
"choosing a random neighbour corresponds to choosing a vertex uniformly at
random" (Section 1).  Sampling is then a single ``rng.integers`` call,
independent of the adjacency structure.

The no-self-loop variant (sample uniformly among the other ``n - 1``
vertices) is provided for robustness studies; for large ``n`` the two are
statistically indistinguishable, and tests verify exactly that.
"""

from __future__ import annotations

import numpy as np

from repro.errors import GraphError
from repro.graphs.base import Graph, vertex_id_dtype

__all__ = ["CompleteGraph"]


class CompleteGraph(Graph):
    """Complete graph on ``n`` vertices.

    Parameters
    ----------
    num_vertices:
        Number of vertices ``n >= 1``.
    self_loops:
        When True (the paper's convention and the default), a vertex's
        neighbourhood is the whole vertex set including itself.
    """

    def __init__(self, num_vertices: int, self_loops: bool = True) -> None:
        if num_vertices < 1:
            raise GraphError(f"need at least one vertex, got {num_vertices}")
        if not self_loops and num_vertices < 2:
            raise GraphError(
                "a single vertex without a self-loop has no neighbours"
            )
        self.num_vertices = int(num_vertices)
        self.self_loops = bool(self_loops)

    @property
    def is_complete_with_self_loops(self) -> bool:
        return self.self_loops

    def sample_neighbors(
        self, rng: np.random.Generator, samples_per_vertex: int
    ) -> np.ndarray:
        n = self.num_vertices
        if self.self_loops:
            return rng.integers(0, n, size=(n, samples_per_vertex))
        # Uniform over the other n-1 vertices: sample in [0, n-1) and shift
        # values >= own index up by one, which skips exactly "self".
        draws = rng.integers(0, n - 1, size=(n, samples_per_vertex))
        own = np.arange(n, dtype=draws.dtype)[:, None]
        return draws + (draws >= own)

    def sample_neighbors_of(
        self,
        vertices: np.ndarray,
        rng: np.random.Generator,
        samples_per_vertex: int,
    ) -> np.ndarray:
        vertices = np.asarray(vertices, dtype=np.int64)
        n = self.num_vertices
        if self.self_loops:
            return rng.integers(0, n, size=(vertices.size, samples_per_vertex))
        draws = rng.integers(
            0, n - 1, size=(vertices.size, samples_per_vertex)
        )
        return draws + (draws >= vertices[:, None])

    def sample_neighbors_batch(
        self,
        rng: np.random.Generator,
        samples_per_vertex: int,
        num_replicas: int,
    ) -> np.ndarray:
        """One bounded draw covers every replica (see :class:`Graph`).

        With self-loops a neighbour sample is a uniform vertex, so the
        whole ``(s, R, n)`` tensor is a single ``rng.integers`` call; the
        loop-free variant shifts draws past each vertex's own index,
        exactly as in :meth:`sample_neighbors`.  Labels are drawn in the
        narrowest dtype holding a vertex id.
        """
        n = self.num_vertices
        shape = (samples_per_vertex, num_replicas, n)
        if self.self_loops:
            return rng.integers(
                0, n, size=shape, dtype=vertex_id_dtype(n)
            )
        draws = rng.integers(0, n - 1, size=shape, dtype=np.int64)
        return draws + (draws >= np.arange(n, dtype=np.int64))

    def csr_arrays(self) -> tuple[np.ndarray, np.ndarray]:
        """Materialised dense CSR structure (O(n^2) memory; small n)."""
        n = self.num_vertices
        if self.self_loops:
            indptr = np.arange(n + 1, dtype=np.int64) * n
            indices = np.tile(np.arange(n, dtype=np.int64), n)
            return indptr, indices
        indptr = np.arange(n + 1, dtype=np.int64) * (n - 1)
        grid = np.tile(np.arange(n, dtype=np.int64), (n, 1))
        mask = ~np.eye(n, dtype=bool)
        return indptr, grid[mask]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        suffix = "+loops" if self.self_loops else "-loops"
        return f"CompleteGraph(n={self.num_vertices}, {suffix})"
